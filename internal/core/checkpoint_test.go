package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestEngineCheckpointRecover(t *testing.T) {
	part := twoLevel(t)
	e1 := newEngine(t, part, nil)
	for i := 0; i < 20; i++ {
		tx, _ := e1.Begin(0)
		write(t, tx, gr(0, i%5), fmt.Sprintf("v%d", i))
		mustCommit(t, tx)
	}
	d, _ := e1.Begin(1)
	if got := read(t, d, gr(0, 0)); got == "" {
		t.Fatal("setup failed")
	}
	write(t, d, gr(1, 1), "derived")
	mustCommit(t, d)

	var buf bytes.Buffer
	if err := e1.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngineFromCheckpoint(Config{Partition: part, WallInterval: 8}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Recovered values visible to update transactions…
	tx, _ := e2.Begin(1)
	if got := read(t, tx, gr(0, 0)); got != "v15" {
		t.Fatalf("recovered read = %q, want v15", got)
	}
	if got := read(t, tx, gr(1, 1)); got != "derived" {
		t.Fatalf("recovered root read = %q", got)
	}
	// …and writable on top.
	write(t, tx, gr(1, 1), "derived-2")
	mustCommit(t, tx)

	// And to Protocol C readers.
	ro, _ := e2.BeginReadOnly()
	if got := read(t, ro, gr(0, 0)); got != "v15" {
		t.Fatalf("recovered wall read = %q", got)
	}
	mustCommit(t, ro)
}

// TestCheckpointDuringLoad: checkpoints taken while updates churn are
// consistent (the gate drains in-flight transactions first) and recover
// cleanly.
func TestCheckpointDuringLoad(t *testing.T) {
	part := twoLevel(t)
	e := newEngine(t, part, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				tx, _ := e.Begin(0)
				if err := tx.Write(gr(0, (c*31+i)%16), []byte{byte(i)}); err != nil {
					_ = tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(c)
	}
	for k := 0; k < 5; k++ {
		var buf bytes.Buffer
		if err := e.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		e2, err := NewEngineFromCheckpoint(Config{Partition: part}, &buf)
		if err != nil {
			t.Fatalf("checkpoint %d failed recovery: %v", k, err)
		}
		// Every recovered chain contains only committed versions.
		for key := 0; key < 16; key++ {
			for _, v := range e2.Store().Versions(gr(0, key)) {
				if v.State != 1 { // mvstore.Committed
					t.Fatalf("pending version in checkpoint %d", k)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
