package core

import (
	"fmt"
	"sync"
	"time"

	"hdd/internal/cc"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// updateTxn is an update transaction of one class.
//
// The mutex exists for the reaper: the owning client drives Read/Write/
// Commit/Abort from one goroutine, but the background reaper (and a Close
// racing a blocked read) may force-abort the transaction from another.
// Every state transition and every store mutation happens under mu, so a
// force-abort either observes an installed pending version (and removes
// it) or excludes the install entirely — no version can leak past the
// abort and pin the activity tables forever.
type updateTxn struct {
	eng      *Engine
	init     vclock.Time
	class    schema.ClassID
	deadline time.Time // zero = no deadline

	mu   sync.Mutex
	done bool
	// deadErr is the sticky error set by a force-abort (reaper, deadline,
	// shutdown); subsequent operations return it so the client learns the
	// transaction was killed rather than finished.
	deadErr error
	// cancel is closed by a force-abort to wake a blocked read.
	cancel chan struct{}
	// writes tracks granules with an installed pending version, for
	// commit/abort and read-your-own-writes.
	writes map[schema.GranuleID][]byte
}

var _ cc.Txn = (*updateTxn)(nil)
var _ cc.SharedReader = (*updateTxn)(nil)
var _ liveTxn = (*updateTxn)(nil)

// ID implements cc.Txn.
func (t *updateTxn) ID() cc.TxnID { return t.init }

// Class implements cc.Txn.
func (t *updateTxn) Class() schema.ClassID { return t.class }

// deadErrLocked returns the error operations on a finished transaction
// surface: the sticky force-abort error if one was set, cc.ErrTxnDone
// otherwise. Callers must hold t.mu.
func (t *updateTxn) deadErrLocked() error {
	if t.deadErr != nil {
		return t.deadErr
	}
	return cc.ErrTxnDone
}

// Read implements cc.Txn: ReadShared plus the defensive copy the public
// boundary owes its callers.
func (t *updateTxn) Read(g schema.GranuleID) ([]byte, error) {
	val, err := t.ReadShared(g)
	if val == nil || err != nil {
		return nil, err
	}
	return append([]byte(nil), val...), nil
}

// ReadShared implements cc.SharedReader. Reads in the root segment follow
// Protocol B (registered, may wait); reads in higher segments follow
// Protocol A (non-blocking, trace-free — and wait-free all the way into
// the store, which serves them from an RCU snapshot with no locks and no
// copies). A blocked Protocol B read wakes on the transaction deadline
// (aborting with cc.ReasonTimedOut) and on engine shutdown (returning
// cc.ErrEngineClosed). The returned slice aliases immutable engine-owned
// memory.
func (t *updateTxn) ReadShared(g schema.GranuleID) ([]byte, error) {
	e := t.eng
	if err := e.closedErr(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return nil, err
	}
	e.ctr.Reads.Add(1)
	if v, ok := t.writes[g]; ok {
		// Own-write slices are immutable too: Write swaps in a fresh copy
		// rather than editing in place, so sharing v is safe.
		t.mu.Unlock()
		e.rec.RecordRead(t.init, g, t.init, true)
		return v, nil
	}
	t.mu.Unlock()
	root := e.part.Class(t.class).Writes
	switch {
	case g.Segment == root:
		// Protocol B: registered read at the transaction's own timestamp
		// (RootMVTO), or of the globally latest version with a
		// read-too-late rejection (RootBasicTO).
		bound := t.init
		if e.rootProto == RootBasicTO {
			bound = vclock.Infinity
		}
		for {
			val, vts, ok, wait := e.store.ReadRegistered(g, bound, t.init)
			if wait != nil {
				// Basic TO must reject a read behind a *younger*
				// prewrite rather than wait for it: the younger writer's
				// own reads may be waiting on this transaction's pending
				// versions the other way, and the age-ordered
				// no-deadlock argument only covers waits on elders.
				if e.rootProto == RootBasicTO && vts > t.init {
					e.ctr.RejectedReads.Add(1)
					err := &cc.AbortError{Reason: cc.ReasonReadRejected,
						Err: fmt.Errorf("basic-TO root read of %v at %d behind prewrite at %d", g, t.init, vts)}
					t.abort()
					return nil, err
				}
				e.ctr.BlockedReads.Add(1)
				if err := t.awaitResolve(g, wait); err != nil {
					return nil, err
				}
				// The reaper may have force-aborted the transaction while
				// the read was blocked; re-check before touching the
				// store again.
				t.mu.Lock()
				if t.done {
					err := t.deadErrLocked()
					t.mu.Unlock()
					return nil, err
				}
				t.mu.Unlock()
				continue
			}
			if e.rootProto == RootBasicTO && ok && vts > t.init {
				e.ctr.RejectedReads.Add(1)
				err := &cc.AbortError{Reason: cc.ReasonReadRejected,
					Err: fmt.Errorf("basic-TO root read of %v at %d after write at %d", g, t.init, vts)}
				t.abort()
				return nil, err
			}
			e.ctr.ReadRegistrations.Add(1)
			if o := e.obs; o != nil {
				o.readsB.Inc()
			}
			e.rec.RecordRead(t.init, g, vts, ok)
			return val, nil
		}
	case e.part.MayRead(t.class, g.Segment):
		// Protocol A: the segment is higher in the DHG; serve the latest
		// committed version below the activity-link threshold. Nothing is
		// registered and the read cannot block (§4.2).
		bound := e.links.A(t.class, schema.ClassID(g.Segment), t.init)
		val, vts, ok := e.store.ReadCommittedBefore(g, bound)
		if o := e.obs; o != nil {
			o.readsA.Inc()
			o.lockfreeA.Inc()
		}
		e.rec.RecordRead(t.init, g, vts, ok)
		return val, nil
	default:
		err := &cc.AbortError{Reason: cc.ReasonClassViolation,
			Err: fmt.Errorf("class %d (%q) may not read segment %d", t.class, e.part.Class(t.class).Name, g.Segment)}
		t.abort()
		return nil, err
	}
}

// awaitResolve blocks a Protocol B read until the pending version it is
// waiting on resolves, the transaction deadline expires, the reaper kills
// the transaction, or the engine shuts down. A nil return means the
// version resolved and the read should retry.
func (t *updateTxn) awaitResolve(g schema.GranuleID, resolved <-chan struct{}) error {
	e := t.eng
	var timerC <-chan time.Time
	if !t.deadline.IsZero() {
		d := time.Until(t.deadline)
		if d < 0 {
			d = 0
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case <-resolved:
		return nil
	case <-t.cancel:
		// Force-aborted while blocked; deadErr was set before cancel
		// closed.
		t.mu.Lock()
		err := t.deadErrLocked()
		t.mu.Unlock()
		return err
	case <-e.closed:
		t.finishAbort(cc.ErrEngineClosed, false)
		return cc.ErrEngineClosed
	case <-timerC:
		e.ctr.TimedOutReads.Add(1)
		err := &cc.AbortError{Reason: cc.ReasonTimedOut,
			Err: fmt.Errorf("read of %v blocked past the transaction deadline", g)}
		t.finishAbort(err, false)
		return err
	}
}

// Write implements cc.Txn. Writes are restricted to the root segment and
// follow Protocol B's MVTO admission check; a rejected write aborts the
// transaction.
func (t *updateTxn) Write(g schema.GranuleID, value []byte) error {
	e := t.eng
	if err := e.closedErr(); err != nil {
		return err
	}
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return err
	}
	e.ctr.Writes.Add(1)
	if !e.part.MayWrite(t.class, g.Segment) {
		t.mu.Unlock()
		err := &cc.AbortError{Reason: cc.ReasonClassViolation,
			Err: fmt.Errorf("class %d (%q) may not write segment %d", t.class, e.part.Class(t.class).Name, g.Segment)}
		t.abort()
		return err
	}
	if _, ok := t.writes[g]; ok {
		e.store.UpdatePending(g, t.init, value)
		t.writes[g] = append([]byte(nil), value...)
		t.mu.Unlock()
		return nil
	}
	if err := e.store.InstallChecked(g, t.init, value); err != nil {
		t.mu.Unlock()
		e.ctr.RejectedWrites.Add(1)
		t.abort()
		return &cc.AbortError{Reason: cc.ReasonWriteRejected, Err: err}
	}
	if t.writes == nil {
		t.writes = make(map[schema.GranuleID][]byte)
	}
	t.writes[g] = append([]byte(nil), value...)
	e.rec.RecordWrite(t.init, g, t.init)
	t.mu.Unlock()
	return nil
}

// Commit implements cc.Txn. Version flips precede the activity-table
// commit: once the table shows this transaction resolved, every Protocol A
// threshold that admits its versions must find them committed in the store
// (the mutexes on both structures give the necessary happens-before).
//
// With durability enabled, the commit marker is enqueued to the WAL
// *before* the version flips, still under t.mu: a dependent transaction
// can only observe this transaction's versions after the flip, so its own
// marker is enqueued — and therefore flushed — after this one, which is
// the order recovery needs (DESIGN.md §10.3). The wait for the marker's
// flush batch happens last, after every in-memory release (gate share,
// registry, wall poll), so a quiescing snapshot or another committer is
// never blocked behind this transaction's fsync. The flip-before-durable
// order does let a read-only transaction observe data whose commit is
// later lost in a crash — the accepted read-side anomaly DESIGN.md §10.3
// documents.
func (t *updateTxn) Commit() error {
	e := t.eng
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return err
	}
	t.done = true
	var wait func() error
	if e.dur != nil && len(t.writes) > 0 {
		wait = e.dur.persist.PersistCommit(t.init)
	}
	for g := range t.writes {
		e.store.Commit(g, t.init)
	}
	at := e.act.FinishTxn(int(t.class), t.init, e.clock, false)
	t.mu.Unlock()
	e.live.unregister(t.init)
	e.ctr.Commits.Add(1)
	if o := e.obs; o != nil {
		o.commitUpdate(t.class)
	}
	e.rec.RecordCommit(t.init, at)
	e.pollWalls()
	// GC — and its PersistPrune log append — runs while this transaction
	// still holds its admission-gate share: a snapshot's quiesce
	// (gate.lockAll) cannot complete mid-GC, so a prune record can never
	// race the post-snapshot log reset.
	e.maybeGC()
	e.exitUpdate(t.class)
	if wait != nil {
		if err := wait(); err != nil {
			return e.commitDurabilityErr(t.init, err)
		}
	}
	return nil
}

// Abort implements cc.Txn.
func (t *updateTxn) Abort() error {
	t.abort()
	return nil
}

func (t *updateTxn) abort() { t.finishAbort(nil, false) }

// finishAbort moves the transaction to aborted, releasing its pending
// versions and activity entry. sticky (may be nil) becomes the error
// subsequent operations return; reaped counts the abort in
// Stats().ReapedTxns. It reports whether this call performed the abort
// (false if the transaction already finished).
func (t *updateTxn) finishAbort(sticky error, reaped bool) bool {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return false
	}
	t.done = true
	t.deadErr = sticky
	close(t.cancel)
	e := t.eng
	for g := range t.writes {
		e.store.Abort(g, t.init)
	}
	at := e.act.FinishTxn(int(t.class), t.init, e.clock, true)
	t.mu.Unlock()
	e.live.unregister(t.init)
	e.exitUpdate(t.class)
	e.ctr.Aborts.Add(1)
	if reaped {
		e.ctr.ReapedTxns.Add(1)
	}
	if o := e.obs; o != nil {
		o.abortUpdate(t.class)
		if reaped {
			o.reaped(int32(t.class), t.init)
		}
	}
	e.rec.RecordAbort(t.init, at)
	e.pollWalls()
	return true
}

// expiry implements liveTxn.
func (t *updateTxn) expiry() time.Time { return t.deadline }

// reap implements liveTxn: the reaper force-aborts the transaction,
// releasing its pending versions and activity entry so walls and GC can
// progress again.
func (t *updateTxn) reap() bool {
	return t.finishAbort(&cc.AbortError{Reason: cc.ReasonTimedOut,
		Err: fmt.Errorf("transaction %d force-aborted by the reaper after exceeding its deadline", t.init)}, true)
}
