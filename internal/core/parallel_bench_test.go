package core

import (
	"sync/atomic"
	"testing"

	"hdd/internal/cc"
	"hdd/internal/obs"
	"hdd/internal/schema"
)

// BenchmarkParallelLifecycle measures whole-lifecycle throughput under a
// multi-class workload: workers spread across every class of a depth-8
// chain, each iteration running begin → read up the hierarchy → write own
// root → commit. Run with -cpu 1,2,4,8 (make bench-parallel) to see how
// the sharded begin/commit paths scale: with the per-class begin windows,
// striped registry, and sharded counters, no class's lifecycle serializes
// against another's except at the logical clock itself.
func BenchmarkParallelLifecycle(b *testing.B) {
	benchParallelLifecycle(b, nil)
}

// BenchmarkParallelLifecycleObs is the identical workload with an
// observability plane attached — the instrumented hot paths pay one
// sharded counter increment per operation plus the stride-sampled
// begin-window trace event. The delta against BenchmarkParallelLifecycle
// is the plane's whole-lifecycle overhead (budget: <=5%, EXPERIMENTS.md).
func BenchmarkParallelLifecycleObs(b *testing.B) {
	benchParallelLifecycle(b, obs.NewPlane())
}

func benchParallelLifecycle(b *testing.B, plane *obs.Plane) {
	const depth = 8
	// Steady-state configuration: automatic GC keeps version chains and
	// activity history bounded, as any long-running deployment would.
	e, err := NewEngine(Config{Partition: benchPartChain(b, depth),
		WallInterval: 1024, GCEveryCommits: 2048, Obs: plane})
	if err != nil {
		b.Fatal(err)
	}
	seed, err := e.Begin(0)
	if err != nil {
		b.Fatal(err)
	}
	if err := seed.Write(gr(0, 1), []byte("v")); err != nil {
		b.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	var workers atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(workers.Add(1) - 1)
		class := schema.ClassID(id % depth)
		base := (id + 1) * 1024 // private key space per worker
		i := 0
		for pb.Next() {
			i++
			tx, err := e.Begin(class)
			if err != nil {
				b.Fatal(err)
			}
			// Protocol A for every class but the top, Protocol B there.
			if _, err := tx.Read(gr(0, 1)); err != nil {
				b.Fatal(err)
			}
			if err := tx.Write(gr(int(class), base+i%64), []byte{byte(i)}); err != nil {
				if cc.IsAbort(err) {
					continue
				}
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
