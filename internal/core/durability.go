package core

// Durability: the pluggable persistence substrate behind the engine
// (DESIGN.md §10). The concurrency kernel is unchanged — it runs against
// the in-memory multi-version store — while a mvstore.Persister hook
// streams every install/abort/prune into a redo-only WAL
// (internal/wal), commit markers ride the WAL's group-commit pipeline,
// and a background snapshotter bounds the log with the existing
// HDDCKPT1 checkpoint format. Startup recovery is snapshot + WAL-tail
// replay, discarding transactions without a durable commit marker.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hdd/internal/cc"
	"hdd/internal/mvstore"
	"hdd/internal/obs"
	"hdd/internal/schema"
	"hdd/internal/vclock"
	"hdd/internal/vfs"
	"hdd/internal/wal"
)

// DurabilityMode selects the engine's persistence backend.
type DurabilityMode uint8

const (
	// DurabilityNone (default) keeps the engine memory-only; a crash
	// loses everything, as in the original reproduction.
	DurabilityNone DurabilityMode = iota
	// DurabilityWAL persists every commit to a write-ahead log under
	// Config.DataDir before acknowledging it, recovers snapshot+log on
	// startup, and snapshots in the background to truncate the log.
	DurabilityWAL
)

// File names under Config.DataDir.
const (
	snapshotFile = "snapshot"
	walFile      = "wal.log"
)

// RecoveryStats describes what startup recovery found and did.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot file was present.
	SnapshotLoaded bool
	// ReplayedRecords and ReplayedBytes measure the WAL tail applied on
	// top of the snapshot.
	ReplayedRecords int64
	ReplayedBytes   int64
	// TornTail reports whether the log ended in a partial record (the
	// normal signature of a crash mid-flush); the tail was truncated.
	TornTail bool
	// HighWater is the largest timestamp recovered; the logical clock
	// restarted above it.
	HighWater vclock.Time
	// Duration is the wall-clock time recovery took.
	Duration time.Duration
}

// DurabilityStats is the durability layer's counter snapshot, exposed
// through the server's Stats opcode.
type DurabilityStats struct {
	WAL          wal.Stats
	LogBytes     int64
	Snapshots    int64
	SnapshotErrs int64
	Recovery     RecoveryStats
	// Degraded reports the fail-stop state: a storage failure poisoned the
	// log and the engine is read-only (DESIGN.md §11). DegradedCause is the
	// poisoning error's text, empty while healthy.
	Degraded      bool
	DegradedCause string
}

// durability is the engine's durability state; nil when DurabilityNone.
type durability struct {
	log     *wal.Log
	persist *wal.Persister
	dataDir string
	fs      vfs.FS

	snapshotBytes int64
	rec           RecoveryStats

	// snapMu serializes Snapshot calls (the background snapshotter vs an
	// explicit server-shutdown snapshot).
	snapMu       sync.Mutex
	snapshots    atomic.Int64
	snapshotErrs atomic.Int64
	closeErr     error

	// degraded is the fail-stop latch (DESIGN.md §11): set by the first
	// storage failure, never cleared — even if the disk later "recovers",
	// an unknown amount of acknowledged state may be missing from the log,
	// so the only safe exit is a restart through recovery. cause (under
	// poisonMu) wraps cc.ErrDurabilityFailed around the original error.
	degraded atomic.Bool
	poisonMu sync.Mutex
	cause    error

	// onPoison, if set, runs exactly once when the fail-stop latch first
	// sets (the observability plane's degraded trace event). It must not
	// call back into the durability layer.
	onPoison func()
}

// poison latches the fail-stop state with the first cause. Safe to call
// from any goroutine, including the WAL flusher via wal.Options.OnError.
func (d *durability) poison(cause error) {
	if cause == nil {
		return
	}
	d.poisonMu.Lock()
	first := false
	if d.cause == nil {
		d.cause = fmt.Errorf("%w (storage error: %v)", cc.ErrDurabilityFailed, cause)
		d.degraded.Store(true)
		first = true
	}
	d.poisonMu.Unlock()
	if first && d.onPoison != nil {
		d.onPoison()
	}
}

// degradedErr returns the sticky typed error once poisoned, else nil.
func (d *durability) degradedErr() error {
	if !d.degraded.Load() {
		return nil
	}
	d.poisonMu.Lock()
	defer d.poisonMu.Unlock()
	return d.cause
}

// Degraded reports whether the durability layer has poisoned the engine
// into fail-stop read-only mode, and the sticky cause (wrapping
// cc.ErrDurabilityFailed). Memory-only engines are never degraded.
func (e *Engine) Degraded() (bool, error) {
	if e.dur == nil {
		return false, nil
	}
	err := e.dur.degradedErr()
	return err != nil, err
}

// rejectDegraded is the begin-path check: on a poisoned engine it counts
// and returns the typed rejection for new update/ad-hoc work. Read-only
// begins never call it — degraded mode keeps serving reads.
func (e *Engine) rejectDegraded() error {
	if e.dur == nil {
		return nil
	}
	if err := e.dur.degradedErr(); err != nil {
		e.ctr.DurabilityFailures.Add(1)
		return err
	}
	return nil
}

// commitDurabilityErr converts a failed commit-marker wait into the error
// the client sees. A storage failure poisons the engine (fail-stop) and
// surfaces cc.ErrDurabilityFailed; a benign close race — the engine shut
// down with the batch unflushed — stays an ordinary non-durable error and
// does not poison.
func (e *Engine) commitDurabilityErr(id vclock.Time, err error) error {
	if errors.Is(err, wal.ErrClosed) {
		return fmt.Errorf("core: commit %d applied in memory but not durable: %w", id, err)
	}
	e.dur.poison(err)
	e.ctr.DurabilityFailures.Add(1)
	return fmt.Errorf("core: commit %d applied in memory but not durable: %w", id, e.dur.degradedErr())
}

// initDurability runs recovery and installs the WAL behind the store.
// Called from NewEngine after the kernel is assembled, before any
// transaction can begin.
func (e *Engine) initDurability(cfg Config) error {
	if cfg.DataDir == "" {
		return fmt.Errorf("core: Durability WAL requires Config.DataDir")
	}
	fs := cfg.FS
	if fs == nil {
		fs = vfs.OS{}
	}
	start := time.Now()
	if err := fs.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return fmt.Errorf("core: creating data dir: %w", err)
	}
	// Make the data directory's own entry durable in case MkdirAll just
	// created it. Best-effort: the parent may not be openable (and on an
	// existing deployment there is nothing to persist).
	fs.SyncDir(filepath.Dir(cfg.DataDir))
	d := &durability{dataDir: cfg.DataDir, fs: fs, snapshotBytes: cfg.SnapshotBytes}
	if d.snapshotBytes == 0 {
		d.snapshotBytes = 8 << 20
	}
	// The fsync histogram and the flush/degraded hooks are installed
	// before the log opens so the flusher goroutine never observes them
	// half-built; the scrape-time WAL counter families follow once the
	// log exists.
	var onFlush func(records, bytes int64, syncDur time.Duration)
	if o := e.obs; o != nil {
		d.onPoison = func() {
			o.ring.Record(obs.KindDegraded, obs.NoClass, 0, 0, 0)
		}
		o.walFsync = o.reg.Histogram("hdd_wal_fsync_seconds",
			"Duration of each WAL flush-batch fsync.")
		onFlush = func(records, bytes int64, syncDur time.Duration) {
			o.walFsync.Observe(syncDur)
			o.ring.Record(obs.KindWALFlush, obs.NoClass, records, bytes, syncDur.Microseconds())
		}
	}

	// Recovery step 1: load the latest snapshot, if any.
	var high vclock.Time
	snapPath := filepath.Join(cfg.DataDir, snapshotFile)
	if f, err := fs.Open(snapPath); err == nil {
		store, h, rerr := mvstore.ReadCheckpoint(f)
		f.Close()
		if rerr != nil {
			// A corrupt snapshot is refused, never half-loaded: the operator
			// must restore or delete it (the WAL alone may not cover it).
			return fmt.Errorf("core: loading snapshot %s: %w", snapPath, rerr)
		}
		e.store = store
		high = h
		d.rec.SnapshotLoaded = true
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("core: opening snapshot %s: %w", snapPath, err)
	}

	// Recovery step 2: replay the WAL tail on top of the snapshot. The
	// persister is not installed yet, so replay appends nothing.
	walPath := filepath.Join(cfg.DataDir, walFile)
	var valid int64
	if f, err := fs.Open(walPath); err == nil {
		v, n, torn, rerr := e.replayWAL(f, &high)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("core: replaying wal: %w", rerr)
		}
		valid = v
		d.rec.ReplayedRecords = n
		d.rec.ReplayedBytes = v
		d.rec.TornTail = torn
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("core: opening wal: %w", err)
	}

	// Recovery step 3: reopen the log for appending, truncating the torn
	// tail, and hook it behind the store. A flusher-side storage failure
	// poisons the engine (fail-stop) even before any commit waiter
	// observes it.
	log, err := wal.Open(walPath, valid, wal.Options{
		FlushInterval: cfg.WALFlushInterval,
		FlushBytes:    cfg.WALFlushBytes,
		SyncEach:      cfg.WALSyncEach,
		FS:            fs,
		OnError:       d.poison,
		OnFlush:       onFlush,
	})
	if err != nil {
		return err
	}
	d.log = log
	// A freshly created wal.log is only durable once its directory entry
	// is: without this fsync, a first-boot crash could drop the file —
	// and every acknowledged commit in it — even though the file's own
	// contents were fsynced. Must happen before any commit can be acked.
	if err := fs.SyncDir(cfg.DataDir); err != nil {
		log.Close()
		return fmt.Errorf("core: syncing data dir: %w", err)
	}
	d.persist = &wal.Persister{Log: log}
	e.store.SetPersister(d.persist)

	// Recovery step 4: restart the logical clock above everything
	// recovered, so every new transaction orders after it, and recompute
	// the wall so the first Protocol C reads see the recovered state.
	e.clock.Observe(high)
	e.walls.Force()
	d.rec.HighWater = high
	d.rec.Duration = time.Since(start)
	e.dur = d
	if o := e.obs; o != nil {
		o.registerWAL(e)
	}

	if d.snapshotBytes > 0 {
		interval := cfg.SnapshotInterval
		if interval <= 0 {
			interval = time.Second
		}
		e.bgWG.Add(1)
		go e.snapshotter(interval)
	}
	return nil
}

// replayWAL applies the redo log to the store. Writes are buffered per
// transaction and installed only when that transaction's commit marker
// appears — a transaction without a durable marker never happened
// (no-steal redo-only recovery). Aborts drop the buffer early; prunes
// re-run GC so replay does not resurrect versions a logged GC pass
// removed. high is advanced over every timestamp seen, committed or not,
// so the restarted clock can never re-issue a timestamp that reached the
// log.
//
// Replay goes through the store's ordinary mutation entry points
// (InstallPending, Commit, GC), so each replayed commit republishes the
// chain's RCU committed snapshot as a side effect — the wait-free read
// path needs no recovery-specific rebuild step.
func (e *Engine) replayWAL(r io.Reader, high *vclock.Time) (valid, records int64, torn bool, err error) {
	observe := func(ts vclock.Time) {
		if ts > *high {
			*high = ts
		}
	}
	pending := make(map[vclock.Time]map[schema.GranuleID][]byte)
	return wal.Replay(r, func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindWrite:
			observe(rec.Txn)
			m := pending[rec.Txn]
			if m == nil {
				m = make(map[schema.GranuleID][]byte)
				pending[rec.Txn] = m
			}
			m[schema.GranuleID{Segment: rec.Seg, Key: rec.Key}] = rec.Value
		case wal.KindAbort:
			observe(rec.Txn)
			delete(pending[rec.Txn], schema.GranuleID{Segment: rec.Seg, Key: rec.Key})
		case wal.KindCommit:
			observe(rec.Txn)
			for g, v := range pending[rec.Txn] {
				ierr := e.store.InstallPending(g, rec.Txn, v)
				if errors.Is(ierr, mvstore.ErrVersionExists) {
					// The snapshot already holds this version: the crash hit
					// between the snapshot rename and the log truncation.
					continue
				}
				if ierr != nil {
					return fmt.Errorf("core: replaying write %v@%d: %w", g, rec.Txn, ierr)
				}
				e.store.Commit(g, rec.Txn)
			}
			delete(pending, rec.Txn)
		case wal.KindPrune:
			observe(rec.Watermark)
			e.store.GC(rec.Watermark)
		}
		return nil
	})
}

// Snapshot quiesces update processing (taking every §7.1 admission gate,
// exactly like WriteCheckpoint), writes the store to the snapshot file
// atomically (tmp + fsync + rename), and truncates the WAL. Read-only
// transactions keep running throughout. It is the log-bounding duty of
// §7.3, run by the background snapshotter past Config.SnapshotBytes and
// by the server on shutdown.
func (e *Engine) Snapshot() error {
	if e.dur == nil {
		return fmt.Errorf("core: durability is not enabled")
	}
	e.dur.snapMu.Lock()
	defer e.dur.snapMu.Unlock()
	// A poisoned log cannot be safely truncated — an unknown suffix of
	// acknowledged commits may be missing from it, and a snapshot taken
	// from memory would launder that loss into the durable state.
	if err := e.dur.degradedErr(); err != nil {
		return fmt.Errorf("core: snapshot refused: %w", err)
	}
	snapStart := time.Now()
	superseded := e.dur.log.Size()
	all := e.gate.lockAll()
	defer e.gate.unlock(all)
	// Make the log complete up to the quiesce point first: if the
	// checkpoint write fails we still have a fully durable log. A sync
	// failure here is a WAL storage failure — fail-stop.
	if err := e.dur.log.Sync(); err != nil {
		e.dur.snapshotErrs.Add(1)
		e.dur.poison(err)
		return fmt.Errorf("core: syncing wal before snapshot: %w", err)
	}
	// Snapshot-file failures, by contrast, are retryable: the log is fully
	// durable and keeps growing, so only SnapshotErrs is counted and the
	// next snapshotter tick tries again.
	tmp := filepath.Join(e.dur.dataDir, snapshotFile+".tmp")
	if err := e.writeSnapshotFile(tmp); err != nil {
		e.dur.snapshotErrs.Add(1)
		e.dur.fs.Remove(tmp)
		return err
	}
	if err := e.dur.fs.Rename(tmp, filepath.Join(e.dur.dataDir, snapshotFile)); err != nil {
		e.dur.snapshotErrs.Add(1)
		e.dur.fs.Remove(tmp)
		return fmt.Errorf("core: publishing snapshot: %w", err)
	}
	// Sync the directory so the rename itself is durable before the log
	// contents it supersedes are dropped. A failure here must skip the
	// reset: truncating the log while the snapshot's directory entry may
	// not survive a crash would lose committed state.
	if err := e.dur.fs.SyncDir(e.dur.dataDir); err != nil {
		e.dur.snapshotErrs.Add(1)
		return fmt.Errorf("core: syncing data dir after snapshot publish: %w", err)
	}
	// A failed truncate leaves the log file in an unknown state (the
	// in-memory accounting no longer matches the disk) — fail-stop.
	if err := e.dur.log.Reset(); err != nil {
		e.dur.snapshotErrs.Add(1)
		e.dur.poison(err)
		return fmt.Errorf("core: truncating wal after snapshot: %w", err)
	}
	e.dur.snapshots.Add(1)
	if o := e.obs; o != nil {
		o.ring.Record(obs.KindSnapshot, obs.NoClass, superseded,
			time.Since(snapStart).Microseconds(), 0)
	}
	return nil
}

func (e *Engine) writeSnapshotFile(path string) error {
	f, err := e.dur.fs.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating snapshot: %w", err)
	}
	if _, err := e.store.WriteCheckpoint(f); err != nil {
		f.Close()
		return fmt.Errorf("core: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("core: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: closing snapshot: %w", err)
	}
	return nil
}

// snapshotter polls the log size and snapshots once it crosses the
// configured threshold, bounding recovery time and disk use.
func (e *Engine) snapshotter(interval time.Duration) {
	defer e.bgWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.closed:
			return
		case <-tick.C:
			if e.dur.degraded.Load() {
				// Fail-stop: nothing more reaches the disk.
				return
			}
			if e.dur.log.Size() >= e.dur.snapshotBytes {
				// Errors are counted (DurabilityStats.SnapshotErrs) and the
				// next tick retries; the log keeps growing but stays correct.
				e.Snapshot()
			}
		}
	}
}

// DurabilityStats returns the durability layer's counters; ok is false
// when the engine runs with DurabilityNone.
func (e *Engine) DurabilityStats() (DurabilityStats, bool) {
	if e.dur == nil {
		return DurabilityStats{}, false
	}
	s := DurabilityStats{
		WAL:          e.dur.log.Stats(),
		LogBytes:     e.dur.log.Size(),
		Snapshots:    e.dur.snapshots.Load(),
		SnapshotErrs: e.dur.snapshotErrs.Load(),
		Recovery:     e.dur.rec,
	}
	if err := e.dur.degradedErr(); err != nil {
		s.Degraded = true
		s.DegradedCause = err.Error()
	}
	return s, true
}
