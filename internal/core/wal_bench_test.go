package core

// BenchmarkWALCommit measures the commit path under each durability
// arrangement — memory-only, group-committed WAL (several flush
// policies), and per-commit fsync — at 1 and 8 concurrent committers.
// The per-commit-fsync baseline serializes one log sync per commit, so
// its throughput is capped near 1/fsync-latency regardless of
// concurrency; group commit amortizes the sync across every committer
// that arrives during the previous flush. `make bench-wal` archives the
// grid as BENCH_wal.json; the ISSUE 4 acceptance bar is group commit ≥3×
// per-commit fsync at 8 committers.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hdd/internal/schema"
)

func BenchmarkWALCommit(b *testing.B) {
	type mode struct {
		name string
		cfg  func(dir string) Config
	}
	base := func() Config {
		return Config{WallInterval: 256, GCEveryCommits: 256}
	}
	walCfg := func(dir string) Config {
		cfg := base()
		cfg.Durability = DurabilityWAL
		cfg.DataDir = dir
		cfg.SnapshotBytes = -1 // measure the log, not snapshot cycles
		return cfg
	}
	modes := []mode{
		{"none", func(string) Config { return base() }},
		{"group", walCfg}, // FlushInterval 0: flush ASAP, batch by backpressure
		{"group-1ms", func(dir string) Config {
			cfg := walCfg(dir)
			cfg.WALFlushInterval = time.Millisecond // group-commit window
			return cfg
		}},
		{"group-4k", func(dir string) Config {
			cfg := walCfg(dir)
			cfg.WALFlushBytes = 4 << 10 // small byte threshold: early flushes
			return cfg
		}},
		{"sync-each", func(dir string) Config {
			cfg := walCfg(dir)
			cfg.WALSyncEach = true
			return cfg
		}},
	}
	for _, m := range modes {
		for _, committers := range []int{1, 8} {
			b.Run(fmt.Sprintf("mode=%s/c=%d", m.name, committers), func(b *testing.B) {
				benchCommit(b, m.cfg(b.TempDir()), committers)
			})
		}
	}
}

// benchCommit runs b.N single-write commits spread over the given number
// of concurrent committers. Each committer owns one granule, so version
// timestamps are monotone per chain and no MVTO rejection occurs; GC
// keeps the chains short.
func benchCommit(b *testing.B, cfg Config, committers int) {
	p, err := schema.NewPartition(
		[]string{"seg0"},
		[]schema.ClassSpec{{Name: "writer", Writes: 0}})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Partition = p
	e, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	value := make([]byte, 64)

	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < committers; w++ {
		n := b.N / committers
		if w < b.N%committers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			g := schema.GranuleID{Segment: 0, Key: uint64(w)}
			for i := 0; i < n; i++ {
				txn, err := e.Begin(0)
				if err != nil {
					b.Error(err)
					return
				}
				if err := txn.Write(g, value); err != nil {
					b.Error(err)
					return
				}
				if err := txn.Commit(); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	if st, ok := e.DurabilityStats(); ok {
		b.ReportMetric(float64(st.WAL.Syncs), "syncs")
		if st.WAL.Batches > 0 {
			b.ReportMetric(float64(st.WAL.Records)/float64(st.WAL.Batches), "records/batch")
		}
	}
}
