//go:build !race

package core

// raceEnabled skips allocation-count assertions under -race: the race
// detector instruments allocations and makes AllocsPerRun meaningless.
const raceEnabled = false
