package core

import (
	"fmt"
	"sync"

	"hdd/internal/cc"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// Ad-hoc update transactions (§7.1). The paper's future-work section asks
// for a scheme that tolerates transactions whose access pattern is illegal
// for the partition — e.g. an update that reads two incomparable branches
// — without a priori widening the partition for everyone.
//
// This implementation provides the *special handling* path §7.1 motivates
// ("some transactions that are not frequently run … may be left out of the
// pre-analysis intentionally, so that for the majority of the time the
// system can operate under a finer partition while a special handling is
// adopted to take care of this type of transactions"):
//
//   - every ordinary update transaction holds a shared admission gate for
//     its lifetime (one RLock/RUnlock pair — nanoseconds on the fast
//     path);
//   - an ad-hoc transaction takes the gate exclusively: it waits for all
//     in-flight update transactions to finish, briefly holds off new
//     ones, and then runs *solo* against the latest committed state. A
//     solo transaction is trivially serializable — every dependency
//     points into the past — and its writes get a timestamp later than
//     everything resolved.
//
// Read-only transactions are unaffected: Protocol C reads below released
// walls, which the ad-hoc transaction's versions postdate.
//
// The paper aspires to restructuring *without* pausing updates; that
// stronger scheme needs machinery (per-class gates with a transitive
// conflict closure) whose correctness argument the paper does not supply,
// so this reproduction implements the conservative variant and documents
// the delta in DESIGN.md.

// adhocGate is embedded in Engine.
type adhocGate struct {
	mu sync.RWMutex
}

// BeginAdHoc starts an ad-hoc update transaction that writes writeSeg and
// may read any segment, regardless of the declared class patterns. It
// blocks until all in-flight update transactions complete and holds off
// new ones until it finishes — the conservative §7.1 special-handling
// path. Use sparingly, for the rare transactions intentionally left out
// of the partition analysis.
func (e *Engine) BeginAdHoc(writeSeg schema.SegmentID) (cc.Txn, error) {
	if writeSeg < 0 || int(writeSeg) >= e.part.NumSegments() {
		return nil, fmt.Errorf("core: unknown segment %d", writeSeg)
	}
	e.gate.mu.Lock() // waits for every update RLock holder to drain
	class := schema.ClassID(writeSeg)
	init := e.act.BeginTxn(int(class), e.clock)
	e.ctr.Begins.Add(1)
	e.rec.RecordBegin(init, class, false)
	return &adhocTxn{eng: e, init: init, class: class}, nil
}

// enterUpdate / exitUpdate bracket ordinary update transactions.
func (e *Engine) enterUpdate() { e.gate.mu.RLock() }
func (e *Engine) exitUpdate()  { e.gate.mu.RUnlock() }

// adhocTxn runs solo: reads see the latest committed version of anything;
// writes install at the transaction's timestamp in its write segment's
// class, so subsequent Protocol A thresholds and walls account for it.
type adhocTxn struct {
	eng    *Engine
	init   vclock.Time
	class  schema.ClassID
	done   bool
	writes map[schema.GranuleID][]byte
}

var _ cc.Txn = (*adhocTxn)(nil)

// ID implements cc.Txn.
func (t *adhocTxn) ID() cc.TxnID { return t.init }

// Class implements cc.Txn: the class of the segment it writes.
func (t *adhocTxn) Class() schema.ClassID { return t.class }

// Read implements cc.Txn: latest committed version — exact, because the
// transaction runs alone among updates.
func (t *adhocTxn) Read(g schema.GranuleID) ([]byte, error) {
	if t.done {
		return nil, cc.ErrTxnDone
	}
	e := t.eng
	e.ctr.Reads.Add(1)
	if v, ok := t.writes[g]; ok {
		e.rec.RecordRead(t.init, g, t.init, true)
		return append([]byte(nil), v...), nil
	}
	val, vts, ok := e.store.ReadCommittedBefore(g, vclock.Infinity)
	e.rec.RecordRead(t.init, g, vts, ok)
	return val, nil
}

// Write implements cc.Txn: restricted to the declared write segment.
func (t *adhocTxn) Write(g schema.GranuleID, value []byte) error {
	if t.done {
		return cc.ErrTxnDone
	}
	e := t.eng
	e.ctr.Writes.Add(1)
	if g.Segment != schema.SegmentID(t.class) {
		err := &cc.AbortError{Reason: cc.ReasonClassViolation,
			Err: fmt.Errorf("ad-hoc transaction declared write segment %d, wrote %d", t.class, g.Segment)}
		t.abort()
		return err
	}
	if _, ok := t.writes[g]; ok {
		e.store.UpdatePending(g, t.init, value)
		t.writes[g] = append([]byte(nil), value...)
		return nil
	}
	if err := e.store.InstallChecked(g, t.init, value); err != nil {
		// Possible despite solo execution: a *read-only* Protocol B-free
		// path never registers, but an earlier update may have installed
		// a version at a later timestamp before draining. Treat as an
		// ordinary rejection.
		e.ctr.RejectedWrites.Add(1)
		t.abort()
		return &cc.AbortError{Reason: cc.ReasonWriteRejected, Err: err}
	}
	if t.writes == nil {
		t.writes = make(map[schema.GranuleID][]byte)
	}
	t.writes[g] = append([]byte(nil), value...)
	e.rec.RecordWrite(t.init, g, t.init)
	return nil
}

// Commit implements cc.Txn.
func (t *adhocTxn) Commit() error {
	if t.done {
		return cc.ErrTxnDone
	}
	t.done = true
	e := t.eng
	for g := range t.writes {
		e.store.Commit(g, t.init)
	}
	at := e.act.FinishTxn(int(t.class), t.init, e.clock, false)
	e.gate.mu.Unlock()
	e.ctr.Commits.Add(1)
	e.rec.RecordCommit(t.init, at)
	e.walls.Poll()
	return nil
}

// Abort implements cc.Txn.
func (t *adhocTxn) Abort() error {
	if t.done {
		return nil
	}
	t.abort()
	return nil
}

func (t *adhocTxn) abort() {
	if t.done {
		return
	}
	t.done = true
	e := t.eng
	for g := range t.writes {
		e.store.Abort(g, t.init)
	}
	at := e.act.FinishTxn(int(t.class), t.init, e.clock, true)
	e.gate.mu.Unlock()
	e.ctr.Aborts.Add(1)
	e.rec.RecordAbort(t.init, at)
	e.walls.Poll()
}
