package core

import (
	"fmt"
	"sync"
	"time"

	"hdd/internal/cc"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// Ad-hoc update transactions (§7.1). The paper's future-work section asks
// for a scheme that tolerates transactions whose access pattern is illegal
// for the partition — e.g. an update that reads two incomparable branches
// — without a priori widening the partition for everyone.
//
// This implementation provides the *special handling* path §7.1 motivates
// ("some transactions that are not frequently run … may be left out of the
// pre-analysis intentionally, so that for the majority of the time the
// system can operate under a finer partition while a special handling is
// adopted to take care of this type of transactions"):
//
//   - every ordinary update transaction holds a shared per-class gate for
//     its lifetime (one RLock/RUnlock pair — nanoseconds on the fast
//     path);
//   - an ad-hoc transaction takes, exclusively, the gates of every class
//     that could conflict with its declared access set: it waits for the
//     in-flight update transactions of *those classes* to finish, briefly
//     holds off new ones, and then runs against the latest committed
//     state with no concurrent conflicting update. Classes outside the
//     conflict set keep running — the TST says they cannot touch any
//     segment the ad-hoc transaction accesses, so draining them would buy
//     nothing.
//
// A class c conflicts with an ad-hoc transaction accessing
// A = {writeSeg} ∪ declaredReads iff root(c) ∈ A (the ad-hoc transaction
// may read or overwrite what c writes) or writeSeg ∈ reads(c) (c may read
// what the ad-hoc transaction writes). With every conflicting class
// drained, the ad-hoc transaction runs solo *within its footprint*: every
// dependency points into the past, so it is trivially serializable, and
// its writes get a timestamp later than everything it read.
//
// BeginAdHoc declares no read set, so its conflict set is every class —
// the conservative variant (drain the world) earlier revisions shipped.
// BeginAdHocFor narrows the drain to the TST-derived conflict set.
//
// Deadlock-freedom: ad-hoc transactions acquire their gates in ascending
// class order, and ordinary updates hold exactly one share. Two
// overlapping ad-hoc transactions always contend on a common gate (the
// write segment's own class is in both conflict sets whenever their
// footprints intersect), and the ascending order breaks the cycle.
//
// Read-only transactions are unaffected: Protocol C reads below released
// walls, which the ad-hoc transaction's versions postdate.
//
// Because an ad-hoc transaction blocks conflicting updates, an abandoned
// one is a severe stall; it registers with the reaper like any other
// transaction and is force-aborted past its deadline.

// adhocGate is embedded in Engine: one RWMutex per class. Ordinary
// updates of class c hold classes[c].RLock for their lifetime; ad-hoc
// transactions and the checkpointer take exclusive locks over their
// conflict set in ascending order.
type adhocGate struct {
	classes []sync.RWMutex
}

func (g *adhocGate) init(part *schema.Partition) {
	g.classes = make([]sync.RWMutex, part.NumClasses())
}

// lock acquires the given gates exclusively. classes must be sorted
// ascending — the global acquisition order that keeps concurrent ad-hoc
// transactions (and the checkpointer) deadlock-free.
func (g *adhocGate) lock(classes []schema.ClassID) {
	for _, c := range classes {
		g.classes[c].Lock()
	}
}

func (g *adhocGate) unlock(classes []schema.ClassID) {
	for i := len(classes) - 1; i >= 0; i-- {
		g.classes[classes[i]].Unlock()
	}
}

// allClasses returns the full ascending class list — the conflict set of
// an ad-hoc transaction with an undeclared read set, and of a checkpoint.
func (g *adhocGate) allClasses() []schema.ClassID {
	out := make([]schema.ClassID, len(g.classes))
	for i := range out {
		out[i] = schema.ClassID(i)
	}
	return out
}

func (g *adhocGate) lockAll() []schema.ClassID {
	all := g.allClasses()
	g.lock(all)
	return all
}

// enterUpdate / exitUpdate bracket ordinary update transactions of one
// class: a shared hold on that class's gate only.
func (e *Engine) enterUpdate(class schema.ClassID) { e.gate.classes[class].RLock() }
func (e *Engine) exitUpdate(class schema.ClassID)  { e.gate.classes[class].RUnlock() }

// conflictClasses computes the ascending set of classes whose gates an
// ad-hoc transaction writing writeSeg and reading reads must drain.
func (e *Engine) conflictClasses(writeSeg schema.SegmentID, reads []schema.SegmentID) []schema.ClassID {
	accessed := make(map[schema.SegmentID]bool, len(reads)+1)
	accessed[writeSeg] = true
	for _, s := range reads {
		accessed[s] = true
	}
	var out []schema.ClassID
	for c := 0; c < e.part.NumClasses(); c++ {
		cid := schema.ClassID(c)
		if accessed[e.part.Class(cid).Writes] || e.part.MayRead(cid, writeSeg) {
			out = append(out, cid)
		}
	}
	return out
}

// BeginAdHoc starts an ad-hoc update transaction that writes writeSeg and
// may read any segment, regardless of the declared class patterns. With no
// declared read set the conflict set is every class, so it blocks until
// all in-flight update transactions complete and holds off new ones until
// it finishes — the conservative §7.1 special-handling path. Use
// BeginAdHocFor when the read set is known; use either sparingly, for the
// rare transactions intentionally left out of the partition analysis.
func (e *Engine) BeginAdHoc(writeSeg schema.SegmentID) (cc.Txn, error) {
	return e.beginAdHoc(writeSeg, nil, false)
}

// BeginAdHocFor starts an ad-hoc update transaction that writes writeSeg
// and reads only the declared segments. Only the classes that could
// conflict with that access set are drained and held off; update classes
// whose TST row cannot touch any accessed segment keep running. Reads
// outside the declared set fail and abort the transaction.
func (e *Engine) BeginAdHocFor(writeSeg schema.SegmentID, reads ...schema.SegmentID) (cc.Txn, error) {
	for _, s := range reads {
		if s < 0 || int(s) >= e.part.NumSegments() {
			return nil, fmt.Errorf("core: unknown segment %d", s)
		}
	}
	return e.beginAdHoc(writeSeg, reads, true)
}

func (e *Engine) beginAdHoc(writeSeg schema.SegmentID, reads []schema.SegmentID, declared bool) (cc.Txn, error) {
	if writeSeg < 0 || int(writeSeg) >= e.part.NumSegments() {
		return nil, fmt.Errorf("core: unknown segment %d", writeSeg)
	}
	if err := e.closedErr(); err != nil {
		return nil, err
	}
	// Fail-stop: like ordinary updates, ad-hoc transactions are rejected
	// on a poisoned engine before they drain any gates.
	if err := e.rejectDegraded(); err != nil {
		return nil, err
	}
	var held []schema.ClassID
	if declared {
		held = e.conflictClasses(writeSeg, reads)
	} else {
		held = e.gate.allClasses()
	}
	e.gate.lock(held) // waits for the conflict set's RLock holders to drain
	var readSet map[schema.SegmentID]bool
	if declared {
		readSet = make(map[schema.SegmentID]bool, len(reads)+1)
		readSet[writeSeg] = true
		for _, s := range reads {
			readSet[s] = true
		}
	}
	class := schema.ClassID(writeSeg)
	init := e.act.BeginTxn(int(class), e.clock)
	e.ctr.Begins.Add(1)
	if o := e.obs; o != nil {
		o.beginUpdate(class, init)
	}
	e.rec.RecordBegin(init, class, false)
	t := &adhocTxn{eng: e, init: init, class: class, held: held,
		readSet: readSet, deadline: deadlineFor(e.txnTimeout)}
	e.live.register(init, t)
	return t, nil
}

// adhocTxn runs with every conflicting class drained: reads see the latest
// committed version of anything in its footprint; writes install at the
// transaction's timestamp in its write segment's class, so subsequent
// Protocol A thresholds and walls account for it. Like updateTxn, its
// state is mutex-guarded so the reaper can force-abort it — releasing the
// held gates — from another goroutine.
type adhocTxn struct {
	eng      *Engine
	init     vclock.Time
	class    schema.ClassID
	held     []schema.ClassID
	readSet  map[schema.SegmentID]bool // nil = may read any segment
	deadline time.Time

	mu      sync.Mutex
	done    bool
	deadErr error
	writes  map[schema.GranuleID][]byte
}

var _ cc.Txn = (*adhocTxn)(nil)
var _ cc.SharedReader = (*adhocTxn)(nil)
var _ liveTxn = (*adhocTxn)(nil)

// ID implements cc.Txn.
func (t *adhocTxn) ID() cc.TxnID { return t.init }

// Class implements cc.Txn: the class of the segment it writes.
func (t *adhocTxn) Class() schema.ClassID { return t.class }

func (t *adhocTxn) deadErrLocked() error {
	if t.deadErr != nil {
		return t.deadErr
	}
	return cc.ErrTxnDone
}

// Read implements cc.Txn: ReadShared plus the defensive copy the public
// boundary owes its callers.
func (t *adhocTxn) Read(g schema.GranuleID) ([]byte, error) {
	val, err := t.ReadShared(g)
	if val == nil || err != nil {
		return nil, err
	}
	return append([]byte(nil), val...), nil
}

// ReadShared implements cc.SharedReader: latest committed version —
// exact, because no conflicting update runs concurrently. A declared
// transaction may only read its declared segments: anything else is
// outside the drained conflict set, where the solo-execution argument
// does not hold. The returned slice aliases immutable engine-owned
// memory.
func (t *adhocTxn) ReadShared(g schema.GranuleID) ([]byte, error) {
	e := t.eng
	if err := e.closedErr(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return nil, err
	}
	e.ctr.Reads.Add(1)
	if v, ok := t.writes[g]; ok {
		// Own-write slices are immutable too: Write swaps in a fresh copy
		// rather than editing in place, so sharing v is safe.
		t.mu.Unlock()
		e.rec.RecordRead(t.init, g, t.init, true)
		return v, nil
	}
	t.mu.Unlock()
	if t.readSet != nil && !t.readSet[g.Segment] {
		err := &cc.AbortError{Reason: cc.ReasonClassViolation,
			Err: fmt.Errorf("ad-hoc transaction read segment %d outside its declared set", g.Segment)}
		t.abort()
		return nil, err
	}
	val, vts, ok := e.store.ReadCommittedBefore(g, vclock.Infinity)
	if o := e.obs; o != nil {
		o.readsAdHoc.Inc()
		o.lockfreeAdHoc.Inc()
	}
	e.rec.RecordRead(t.init, g, vts, ok)
	return val, nil
}

// Write implements cc.Txn: restricted to the declared write segment.
func (t *adhocTxn) Write(g schema.GranuleID, value []byte) error {
	e := t.eng
	if err := e.closedErr(); err != nil {
		return err
	}
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return err
	}
	e.ctr.Writes.Add(1)
	if g.Segment != schema.SegmentID(t.class) {
		t.mu.Unlock()
		err := &cc.AbortError{Reason: cc.ReasonClassViolation,
			Err: fmt.Errorf("ad-hoc transaction declared write segment %d, wrote %d", t.class, g.Segment)}
		t.abort()
		return err
	}
	if _, ok := t.writes[g]; ok {
		e.store.UpdatePending(g, t.init, value)
		t.writes[g] = append([]byte(nil), value...)
		t.mu.Unlock()
		return nil
	}
	if err := e.store.InstallChecked(g, t.init, value); err != nil {
		// Possible despite the drained conflict set: an earlier update may
		// have installed a version at a later timestamp before draining.
		// Treat as an ordinary rejection.
		t.mu.Unlock()
		e.ctr.RejectedWrites.Add(1)
		t.abort()
		return &cc.AbortError{Reason: cc.ReasonWriteRejected, Err: err}
	}
	if t.writes == nil {
		t.writes = make(map[schema.GranuleID][]byte)
	}
	t.writes[g] = append([]byte(nil), value...)
	e.rec.RecordWrite(t.init, g, t.init)
	t.mu.Unlock()
	return nil
}

// Commit implements cc.Txn. The durable-commit ordering matches
// updateTxn.Commit: marker enqueued before the version flips under t.mu,
// flush awaited only after the held gates are released.
func (t *adhocTxn) Commit() error {
	e := t.eng
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return err
	}
	t.done = true
	var wait func() error
	if e.dur != nil && len(t.writes) > 0 {
		wait = e.dur.persist.PersistCommit(t.init)
	}
	for g := range t.writes {
		e.store.Commit(g, t.init)
	}
	at := e.act.FinishTxn(int(t.class), t.init, e.clock, false)
	t.mu.Unlock()
	e.live.unregister(t.init)
	e.gate.unlock(t.held)
	e.ctr.Commits.Add(1)
	if o := e.obs; o != nil {
		o.commitUpdate(t.class)
	}
	e.rec.RecordCommit(t.init, at)
	e.pollWalls()
	if wait != nil {
		if err := wait(); err != nil {
			return e.commitDurabilityErr(t.init, err)
		}
	}
	return nil
}

// Abort implements cc.Txn.
func (t *adhocTxn) Abort() error {
	t.abort()
	return nil
}

func (t *adhocTxn) abort() { t.finishAbort(nil, false) }

func (t *adhocTxn) finishAbort(sticky error, reaped bool) bool {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return false
	}
	t.done = true
	t.deadErr = sticky
	e := t.eng
	for g := range t.writes {
		e.store.Abort(g, t.init)
	}
	at := e.act.FinishTxn(int(t.class), t.init, e.clock, true)
	t.mu.Unlock()
	e.live.unregister(t.init)
	e.gate.unlock(t.held)
	e.ctr.Aborts.Add(1)
	if reaped {
		e.ctr.ReapedTxns.Add(1)
	}
	if o := e.obs; o != nil {
		o.abortUpdate(t.class)
		if reaped {
			o.reaped(int32(t.class), t.init)
		}
	}
	e.rec.RecordAbort(t.init, at)
	e.pollWalls()
	return true
}

// expiry implements liveTxn.
func (t *adhocTxn) expiry() time.Time { return t.deadline }

// reap implements liveTxn: force-aborting an abandoned ad-hoc transaction
// releases its held gates, unblocking every Begin waiting on them.
func (t *adhocTxn) reap() bool {
	return t.finishAbort(&cc.AbortError{Reason: cc.ReasonTimedOut,
		Err: fmt.Errorf("ad-hoc transaction %d force-aborted by the reaper after exceeding its deadline", t.init)}, true)
}
