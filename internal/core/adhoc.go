package core

import (
	"fmt"
	"sync"
	"time"

	"hdd/internal/cc"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// Ad-hoc update transactions (§7.1). The paper's future-work section asks
// for a scheme that tolerates transactions whose access pattern is illegal
// for the partition — e.g. an update that reads two incomparable branches
// — without a priori widening the partition for everyone.
//
// This implementation provides the *special handling* path §7.1 motivates
// ("some transactions that are not frequently run … may be left out of the
// pre-analysis intentionally, so that for the majority of the time the
// system can operate under a finer partition while a special handling is
// adopted to take care of this type of transactions"):
//
//   - every ordinary update transaction holds a shared admission gate for
//     its lifetime (one RLock/RUnlock pair — nanoseconds on the fast
//     path);
//   - an ad-hoc transaction takes the gate exclusively: it waits for all
//     in-flight update transactions to finish, briefly holds off new
//     ones, and then runs *solo* against the latest committed state. A
//     solo transaction is trivially serializable — every dependency
//     points into the past — and its writes get a timestamp later than
//     everything resolved.
//
// Read-only transactions are unaffected: Protocol C reads below released
// walls, which the ad-hoc transaction's versions postdate.
//
// The paper aspires to restructuring *without* pausing updates; that
// stronger scheme needs machinery (per-class gates with a transitive
// conflict closure) whose correctness argument the paper does not supply,
// so this reproduction implements the conservative variant and documents
// the delta in DESIGN.md.
//
// Because an ad-hoc transaction blocks every other update, an abandoned
// one is the worst possible stall; it registers with the reaper like any
// other transaction and is force-aborted past its deadline.

// adhocGate is embedded in Engine.
type adhocGate struct {
	mu sync.RWMutex
}

// BeginAdHoc starts an ad-hoc update transaction that writes writeSeg and
// may read any segment, regardless of the declared class patterns. It
// blocks until all in-flight update transactions complete and holds off
// new ones until it finishes — the conservative §7.1 special-handling
// path. Use sparingly, for the rare transactions intentionally left out
// of the partition analysis.
func (e *Engine) BeginAdHoc(writeSeg schema.SegmentID) (cc.Txn, error) {
	if writeSeg < 0 || int(writeSeg) >= e.part.NumSegments() {
		return nil, fmt.Errorf("core: unknown segment %d", writeSeg)
	}
	if err := e.closedErr(); err != nil {
		return nil, err
	}
	e.gate.mu.Lock() // waits for every update RLock holder to drain
	class := schema.ClassID(writeSeg)
	init := e.act.BeginTxn(int(class), e.clock)
	e.ctr.Begins.Add(1)
	e.rec.RecordBegin(init, class, false)
	t := &adhocTxn{eng: e, init: init, class: class,
		deadline: deadlineFor(e.txnTimeout)}
	e.register(init, t)
	return t, nil
}

// enterUpdate / exitUpdate bracket ordinary update transactions.
func (e *Engine) enterUpdate() { e.gate.mu.RLock() }
func (e *Engine) exitUpdate()  { e.gate.mu.RUnlock() }

// adhocTxn runs solo: reads see the latest committed version of anything;
// writes install at the transaction's timestamp in its write segment's
// class, so subsequent Protocol A thresholds and walls account for it.
// Like updateTxn, its state is mutex-guarded so the reaper can force-abort
// it — releasing the exclusive gate — from another goroutine.
type adhocTxn struct {
	eng      *Engine
	init     vclock.Time
	class    schema.ClassID
	deadline time.Time

	mu      sync.Mutex
	done    bool
	deadErr error
	writes  map[schema.GranuleID][]byte
}

var _ cc.Txn = (*adhocTxn)(nil)
var _ liveTxn = (*adhocTxn)(nil)

// ID implements cc.Txn.
func (t *adhocTxn) ID() cc.TxnID { return t.init }

// Class implements cc.Txn: the class of the segment it writes.
func (t *adhocTxn) Class() schema.ClassID { return t.class }

func (t *adhocTxn) deadErrLocked() error {
	if t.deadErr != nil {
		return t.deadErr
	}
	return cc.ErrTxnDone
}

// Read implements cc.Txn: latest committed version — exact, because the
// transaction runs alone among updates.
func (t *adhocTxn) Read(g schema.GranuleID) ([]byte, error) {
	e := t.eng
	if err := e.closedErr(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return nil, err
	}
	e.ctr.Reads.Add(1)
	if v, ok := t.writes[g]; ok {
		out := append([]byte(nil), v...)
		t.mu.Unlock()
		e.rec.RecordRead(t.init, g, t.init, true)
		return out, nil
	}
	t.mu.Unlock()
	val, vts, ok := e.store.ReadCommittedBefore(g, vclock.Infinity)
	e.rec.RecordRead(t.init, g, vts, ok)
	return val, nil
}

// Write implements cc.Txn: restricted to the declared write segment.
func (t *adhocTxn) Write(g schema.GranuleID, value []byte) error {
	e := t.eng
	if err := e.closedErr(); err != nil {
		return err
	}
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return err
	}
	e.ctr.Writes.Add(1)
	if g.Segment != schema.SegmentID(t.class) {
		t.mu.Unlock()
		err := &cc.AbortError{Reason: cc.ReasonClassViolation,
			Err: fmt.Errorf("ad-hoc transaction declared write segment %d, wrote %d", t.class, g.Segment)}
		t.abort()
		return err
	}
	if _, ok := t.writes[g]; ok {
		e.store.UpdatePending(g, t.init, value)
		t.writes[g] = append([]byte(nil), value...)
		t.mu.Unlock()
		return nil
	}
	if err := e.store.InstallChecked(g, t.init, value); err != nil {
		// Possible despite solo execution: a *read-only* Protocol B-free
		// path never registers, but an earlier update may have installed
		// a version at a later timestamp before draining. Treat as an
		// ordinary rejection.
		t.mu.Unlock()
		e.ctr.RejectedWrites.Add(1)
		t.abort()
		return &cc.AbortError{Reason: cc.ReasonWriteRejected, Err: err}
	}
	if t.writes == nil {
		t.writes = make(map[schema.GranuleID][]byte)
	}
	t.writes[g] = append([]byte(nil), value...)
	e.rec.RecordWrite(t.init, g, t.init)
	t.mu.Unlock()
	return nil
}

// Commit implements cc.Txn.
func (t *adhocTxn) Commit() error {
	e := t.eng
	t.mu.Lock()
	if t.done {
		err := t.deadErrLocked()
		t.mu.Unlock()
		return err
	}
	t.done = true
	for g := range t.writes {
		e.store.Commit(g, t.init)
	}
	at := e.act.FinishTxn(int(t.class), t.init, e.clock, false)
	t.mu.Unlock()
	e.unregister(t.init)
	e.gate.mu.Unlock()
	e.ctr.Commits.Add(1)
	e.rec.RecordCommit(t.init, at)
	e.walls.Poll()
	return nil
}

// Abort implements cc.Txn.
func (t *adhocTxn) Abort() error {
	t.abort()
	return nil
}

func (t *adhocTxn) abort() { t.finishAbort(nil, false) }

func (t *adhocTxn) finishAbort(sticky error, reaped bool) bool {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return false
	}
	t.done = true
	t.deadErr = sticky
	e := t.eng
	for g := range t.writes {
		e.store.Abort(g, t.init)
	}
	at := e.act.FinishTxn(int(t.class), t.init, e.clock, true)
	t.mu.Unlock()
	e.unregister(t.init)
	e.gate.mu.Unlock()
	e.ctr.Aborts.Add(1)
	if reaped {
		e.ctr.ReapedTxns.Add(1)
	}
	e.rec.RecordAbort(t.init, at)
	e.walls.Poll()
	return true
}

// expiry implements liveTxn.
func (t *adhocTxn) expiry() time.Time { return t.deadline }

// reap implements liveTxn: force-aborting an abandoned ad-hoc transaction
// releases the exclusive update gate, unblocking every Begin waiting on it.
func (t *adhocTxn) reap() bool {
	return t.finishAbort(&cc.AbortError{Reason: cc.ReasonTimedOut,
		Err: fmt.Errorf("ad-hoc transaction %d force-aborted by the reaper after exceeding its deadline", t.init)}, true)
}
