package core

// Garbage collection: the §7.3 maintenance duty. Version chains and
// activity history are pruned against a watermark no future read bound or
// activity query can reach.
//
// The watermark rule is also what makes the store's RCU read path safe
// without epochs or hazard pointers (DESIGN.md §14): pruning only swaps a
// chain's published committed snapshot for a smaller one — the superseded
// snapshot, and every value it references, stays intact for any reader
// that already loaded it, and the Go runtime reclaims it when the last
// such reader drops its reference. A reader that loads the *new* snapshot
// cannot miss a version it is entitled to, because its bound is at or
// above the watermark by construction.

import (
	"hdd/internal/obs"
	"hdd/internal/vclock"
)

// maybeGC runs store GC and activity pruning when the commit counter
// crosses the configured period. The caller must hold an admission-gate
// share (updateTxn.Commit calls it before exitUpdate) so the prune's WAL
// append cannot race a snapshot's log reset.
func (e *Engine) maybeGC() {
	if e.gcEvery <= 0 {
		return
	}
	if e.commitCounter.Add(1)%e.gcEvery != 0 {
		return
	}
	watermark := e.gcWatermark()
	pruned := e.store.GC(watermark)
	e.act.PruneBefore(watermark)
	e.gcRuns.Add(1)
	e.observeGC(watermark, pruned)
}

// observeGC records a GC cycle's result on the attached plane.
func (e *Engine) observeGC(watermark vclock.Time, pruned int) {
	if o := e.obs; o != nil {
		o.gcPruned.Add(int64(pruned))
		o.ring.Record(obs.KindGCPrune, obs.NoClass, int64(watermark), int64(pruned), 0)
	}
}

// gcWatermark computes the instant below which no future read bound or
// activity query can reach: the minimum of live initiation times and the
// wall floor, closed under I_old (see activity.Set.ClosedWatermark — a
// threshold chain can dig below any live transaction's initiation by
// following historical activity overlaps).
func (e *Engine) gcWatermark() vclock.Time {
	now := e.clock.Now()
	w := vclock.Min(e.act.GlobalWatermark(now), e.walls.SafeFloor())
	return e.act.ClosedWatermark(w)
}

// GCRuns reports how many automatic GC cycles have run.
func (e *Engine) GCRuns() int64 { return e.gcRuns.Load() }

// ForceGC runs one GC cycle immediately with a freshly computed watermark
// and returns the number of store versions pruned.
func (e *Engine) ForceGC() int {
	// Hold one admission-gate share for the duration: Snapshot quiesces by
	// taking every gate exclusively before resetting the WAL, so a single
	// share keeps this cycle's PersistPrune append from racing the reset.
	if len(e.gate.classes) > 0 {
		e.gate.classes[0].RLock()
		defer e.gate.classes[0].RUnlock()
	}
	watermark := e.gcWatermark()
	pruned := e.store.GC(watermark)
	e.act.PruneBefore(watermark)
	e.observeGC(watermark, pruned)
	return pruned
}
