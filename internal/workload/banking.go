package workload

import (
	"math/rand"

	"hdd/internal/cc"
	"hdd/internal/schema"
)

// Banking is the Figure 1 example: a single accounts segment with deposit
// and withdrawal transactions. One segment, one class that reads and
// writes it — the degenerate hierarchy every engine must of course still
// handle (under HDD everything is Protocol B).
type Banking struct {
	accounts int
	part     *schema.Partition
}

// SegAccounts is the banking database's only segment.
const SegAccounts schema.SegmentID = 0

// ClassTeller is the banking database's only update class.
const ClassTeller schema.ClassID = 0

// NewBanking builds the Figure 1 banking application with the given number
// of accounts.
func NewBanking(accounts int) (*Banking, error) {
	if accounts <= 0 {
		accounts = 16
	}
	part, err := schema.NewPartition(
		[]string{"accounts"},
		[]schema.ClassSpec{{Name: "teller", Writes: SegAccounts}},
	)
	if err != nil {
		return nil, err
	}
	return &Banking{accounts: accounts, part: part}, nil
}

// Partition returns the banking partition.
func (w *Banking) Partition() *schema.Partition { return w.part }

// Accounts returns the number of accounts.
func (w *Banking) Accounts() int { return w.accounts }

// AccountKey returns the granule of one account's balance.
func AccountKey(acct int) schema.GranuleID {
	return schema.GranuleID{Segment: SegAccounts, Key: uint64(acct)}
}

// Transfer is the deposit/withdraw transaction of Figure 1: read a
// balance, adjust it, write it back. Run concurrently without control this
// loses updates; under any sound engine the sum of all balances always
// equals the sum of applied deltas.
func (w *Banking) Transfer(t cc.Txn, r *rand.Rand) error {
	acct := r.Intn(w.accounts)
	delta := int64(1 + r.Intn(100))
	if r.Intn(2) == 0 {
		delta = -delta
	}
	b, err := t.Read(AccountKey(acct))
	if err != nil {
		return err
	}
	return t.Write(AccountKey(acct), PutInt64(GetInt64(b)+delta))
}

// TransferDelta performs a deterministic adjustment on a specific account,
// for scripted tests.
func (w *Banking) TransferDelta(t cc.Txn, acct int, delta int64) error {
	b, err := t.Read(AccountKey(acct))
	if err != nil {
		return err
	}
	return t.Write(AccountKey(acct), PutInt64(GetInt64(b)+delta))
}

// AuditSum reads every balance and returns the total — the consistency
// probe used by the lost-update experiment and the integration tests.
func (w *Banking) AuditSum(t cc.Txn) (int64, error) {
	var sum int64
	for a := 0; a < w.accounts; a++ {
		b, err := t.Read(AccountKey(a))
		if err != nil {
			return 0, err
		}
		sum += GetInt64(b)
	}
	return sum, nil
}
