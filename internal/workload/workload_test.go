package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdd/internal/cc"
	"hdd/internal/core"
	"hdd/internal/sched"
	"hdd/internal/schema"
)

func TestEncodeRoundTrip(t *testing.T) {
	f := func(v int64) bool { return GetInt64(PutInt64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if GetInt64(nil) != 0 || GetInt64([]byte{1, 2}) != 0 {
		t.Fatal("short/nil values must decode to 0")
	}
}

func TestInventoryPartitionShape(t *testing.T) {
	p, err := NewInventoryPartition(false)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSegments() != 4 {
		t.Fatalf("segments = %d", p.NumSegments())
	}
	// The chain D3→D2→D1→D0.
	if !p.Higher(schema.ClassID(SegEvents), ClassProfiles) {
		t.Fatal("events should be highest")
	}
	pa, err := NewInventoryPartition(true)
	if err != nil {
		t.Fatal(err)
	}
	if pa.NumSegments() != 5 {
		t.Fatalf("audit segments = %d", pa.NumSegments())
	}
	// Audit and inventory are off one critical path.
	if pa.OnOneCriticalPath([]schema.ClassID{ClassInventory, ClassAudit}) {
		t.Fatal("audit and inventory should be off-path")
	}
}

func TestKeyLayoutsDisjoint(t *testing.T) {
	if EventCounterKey(3) == EventKey(3, 1) {
		t.Fatal("counter and event keys collide")
	}
	if LevelKey(3) == LastSeqKey(3) {
		t.Fatal("level and lastseq keys collide")
	}
	if OrderCounterKey(3) == OrderKey(3, 1) {
		t.Fatal("order counter and order keys collide")
	}
	if EventKey(1, 2) == EventKey(2, 1) {
		t.Fatal("event keys collide across items")
	}
}

func newHDD(t testing.TB, part *schema.Partition, rec cc.Recorder) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.Config{Partition: part, Recorder: rec, WallInterval: 32})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func run(t *testing.T, e cc.Engine, class schema.ClassID, readOnly bool, fn func(cc.Txn, *rand.Rand) error, r *rand.Rand) {
	t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		var tx cc.Txn
		var err error
		if readOnly {
			tx, err = e.BeginReadOnly()
		} else {
			tx, err = e.Begin(class)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(tx, r); err != nil {
			_ = tx.Abort()
			if cc.IsAbort(err) {
				continue
			}
			t.Fatalf("txn body: %v", err)
		}
		if err := tx.Commit(); err != nil {
			if cc.IsAbort(err) {
				continue
			}
			t.Fatalf("commit: %v", err)
		}
		return
	}
	t.Fatal("transaction never committed")
}

// TestInventoryConservation: after event entries and full inventory
// postings, each item's level equals the sum of its event deltas — the
// application-level integrity the paper's Figure 1 worries about.
func TestInventoryConservation(t *testing.T) {
	inv, err := NewInventory(InventoryConfig{Items: 4, ScanWindow: 1000})
	if err != nil {
		t.Fatal(err)
	}
	e := newHDD(t, inv.Partition(), nil)
	r := rand.New(rand.NewSource(5))

	for i := 0; i < 200; i++ {
		run(t, e, ClassEventEntry, false, inv.EventEntry, r)
	}
	// Post every item until no events remain unfolded.
	for item := 0; item < 4; item++ {
		item := item
		for pass := 0; pass < 10; pass++ {
			run(t, e, ClassInventory, false, func(tx cc.Txn, _ *rand.Rand) error {
				return inv.PostInventoryItem(tx, item)
			}, r)
		}
	}

	// Audit with a path read-only transaction (events+inventory are on
	// one critical path).
	ro, err := e.BeginReadOnlyOnPath(ClassInventory)
	if err != nil {
		t.Fatal(err)
	}
	for item := 0; item < 4; item++ {
		ctr, err := ro.Read(EventCounterKey(item))
		if err != nil {
			t.Fatal(err)
		}
		n := GetInt64(ctr)
		var want int64
		for seq := int64(1); seq <= n; seq++ {
			ev, err := ro.Read(EventKey(item, seq))
			if err != nil {
				t.Fatal(err)
			}
			if ev == nil {
				t.Fatalf("item %d event %d missing", item, seq)
			}
			want += GetInt64(ev)
		}
		lastB, err := ro.Read(LastSeqKey(item))
		if err != nil {
			t.Fatal(err)
		}
		levelB, err := ro.Read(LevelKey(item))
		if err != nil {
			t.Fatal(err)
		}
		if GetInt64(lastB) != n {
			t.Fatalf("item %d: folded %d of %d events", item, GetInt64(lastB), n)
		}
		if GetInt64(levelB) != want {
			t.Fatalf("item %d: level = %d, want %d", item, GetInt64(levelB), want)
		}
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestInventoryConservationBasicRoot repeats the conservation check under
// the RootBasicTO Protocol B variant: aborts differ, results must not.
func TestInventoryConservationBasicRoot(t *testing.T) {
	inv, err := NewInventory(InventoryConfig{Items: 4, ScanWindow: 1000})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(core.Config{Partition: inv.Partition(), RootProtocol: core.RootBasicTO, WallInterval: 32})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 150; i++ {
		run(t, e, ClassEventEntry, false, inv.EventEntry, r)
	}
	for item := 0; item < 4; item++ {
		item := item
		for pass := 0; pass < 8; pass++ {
			run(t, e, ClassInventory, false, func(tx cc.Txn, _ *rand.Rand) error {
				return inv.PostInventoryItem(tx, item)
			}, r)
		}
	}
	ro, err := e.BeginReadOnlyOnPath(ClassInventory)
	if err != nil {
		t.Fatal(err)
	}
	for item := 0; item < 4; item++ {
		ctr, _ := ro.Read(EventCounterKey(item))
		n := GetInt64(ctr)
		var want int64
		for seq := int64(1); seq <= n; seq++ {
			ev, err := ro.Read(EventKey(item, seq))
			if err != nil || ev == nil {
				t.Fatalf("item %d event %d: %v %v", item, seq, ev, err)
			}
			want += GetInt64(ev)
		}
		levelB, _ := ro.Read(LevelKey(item))
		if GetInt64(levelB) != want {
			t.Fatalf("item %d: level = %d, want %d", item, GetInt64(levelB), want)
		}
	}
	_ = ro.Commit()
}

// TestInventoryMixedSerializable: the full transaction mix on the audit
// partition stays serializable under HDD.
func TestInventoryMixedSerializable(t *testing.T) {
	inv, err := NewInventory(InventoryConfig{Items: 8, WithAudit: true, ReorderPoint: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := sched.NewRecorder()
	e := newHDD(t, inv.Partition(), rec)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 150; i++ {
		switch r.Intn(6) {
		case 0, 1:
			run(t, e, ClassEventEntry, false, inv.EventEntry, r)
		case 2:
			run(t, e, ClassInventory, false, inv.PostInventory, r)
		case 3:
			run(t, e, ClassReorder, false, inv.ReorderCheck, r)
		case 4:
			switch r.Intn(2) {
			case 0:
				run(t, e, ClassProfiles, false, inv.BuildProfile, r)
			default:
				run(t, e, ClassAudit, false, inv.AuditEvents, r)
			}
		default:
			run(t, e, schema.NoClass, true, inv.Report, r)
		}
	}
	g := rec.Build()
	if !g.Serializable() {
		t.Fatalf("inventory mix not serializable:\n%s", g.ExplainCycle())
	}
}

func TestBanking(t *testing.T) {
	b, err := NewBanking(4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Accounts() != 4 || b.Partition().NumSegments() != 1 {
		t.Fatal("banking shape wrong")
	}
	e := newHDD(t, b.Partition(), nil)
	r := rand.New(rand.NewSource(2))

	var want int64
	for i := 0; i < 50; i++ {
		acct := r.Intn(4)
		delta := int64(r.Intn(100) - 50)
		want += delta
		run(t, e, ClassTeller, false, func(tx cc.Txn, _ *rand.Rand) error {
			return b.TransferDelta(tx, acct, delta)
		}, r)
	}
	var got int64
	run(t, e, ClassTeller, false, func(tx cc.Txn, _ *rand.Rand) error {
		s, err := b.AuditSum(tx)
		got = s
		return err
	}, r)
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestBankingDefaultsAndTransfer(t *testing.T) {
	b, err := NewBanking(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Accounts() != 16 {
		t.Fatalf("default accounts = %d", b.Accounts())
	}
	e := newHDD(t, b.Partition(), nil)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		run(t, e, ClassTeller, false, b.Transfer, r)
	}
}

func TestSyntheticTopologies(t *testing.T) {
	for _, top := range []Topology{Chain, Star, Tree} {
		for _, k := range []int{1, 2, 5, 9} {
			s, err := NewSynthetic(SyntheticConfig{Topology: top, Segments: k, GranulesPerSegment: 64})
			if err != nil {
				t.Fatalf("topology %d k=%d: %v", top, k, err)
			}
			if s.Partition().NumClasses() != k {
				t.Fatalf("classes = %d", s.Partition().NumClasses())
			}
		}
	}
}

func TestSyntheticRunsSerializable(t *testing.T) {
	for _, top := range []Topology{Chain, Star, Tree} {
		s, err := NewSynthetic(SyntheticConfig{
			Topology: top, Segments: 5, GranulesPerSegment: 32,
			OpsPerTxn: 6, WritesPerTxn: 2, HotFraction: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		rec := sched.NewRecorder()
		e := newHDD(t, s.Partition(), rec)
		r := rand.New(rand.NewSource(int64(top)))
		for i := 0; i < 100; i++ {
			c := schema.ClassID(r.Intn(5))
			if r.Intn(5) == 0 {
				run(t, e, schema.NoClass, true, s.ReadOnlyTxn(6), r)
			} else {
				run(t, e, c, false, s.UpdateTxn(c), r)
			}
		}
		if g := rec.Build(); !g.Serializable() {
			t.Fatalf("topology %d not serializable:\n%s", top, g.ExplainCycle())
		}
	}
}

func TestSyntheticDefaults(t *testing.T) {
	s, err := NewSynthetic(SyntheticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Segments != 4 || cfg.OpsPerTxn != 8 || cfg.WritesPerTxn != 2 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
