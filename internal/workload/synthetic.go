package workload

import (
	"fmt"
	"math/rand"

	"hdd/internal/cc"
	"hdd/internal/schema"
)

// Topology names a synthetic hierarchy shape.
type Topology uint8

const (
	// Chain builds D_{k-1} → … → D_1 → D_0: class i reads every segment
	// above it. The deepest hierarchy per segment count.
	Chain Topology = iota
	// Star builds D_1..D_{k-1} → D_0: every class reads the shared root.
	// The widest hierarchy; most class pairs are off-path.
	Star
	// Tree builds a complete binary-ish tree with arcs child → parent;
	// each class reads its ancestors.
	Tree
)

// SyntheticConfig parameterizes a synthetic hierarchical workload.
type SyntheticConfig struct {
	// Topology selects the hierarchy shape. Defaults to Chain.
	Topology Topology
	// Segments is the number of segments/classes (k ≥ 1). Defaults to 4.
	Segments int
	// GranulesPerSegment sizes each segment. Defaults to 1024.
	GranulesPerSegment int
	// HotFraction is the fraction of accesses that go to the hottest 1%
	// of granules (contention knob). Defaults to 0 (uniform).
	HotFraction float64
	// OpsPerTxn is the number of operations per transaction. Defaults
	// to 8.
	OpsPerTxn int
	// CrossReadFraction is the fraction of a transaction's reads that
	// target higher segments rather than its root. Defaults to 0.5.
	CrossReadFraction float64
	// WritesPerTxn is the number of root-segment writes per transaction
	// (drawn from OpsPerTxn; the rest are reads). Defaults to 2.
	WritesPerTxn int
}

func (c *SyntheticConfig) defaults() {
	if c.Segments <= 0 {
		c.Segments = 4
	}
	if c.GranulesPerSegment <= 0 {
		c.GranulesPerSegment = 1024
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 8
	}
	if c.CrossReadFraction == 0 {
		c.CrossReadFraction = 0.5
	}
	if c.WritesPerTxn <= 0 {
		c.WritesPerTxn = 2
	}
	if c.WritesPerTxn > c.OpsPerTxn {
		c.WritesPerTxn = c.OpsPerTxn
	}
}

// Synthetic is a generated hierarchical application.
type Synthetic struct {
	cfg  SyntheticConfig
	part *schema.Partition
	// above[i] lists the segments class i may read above its root.
	above [][]schema.SegmentID
}

// NewSynthetic builds a synthetic application with a validated partition.
func NewSynthetic(cfg SyntheticConfig) (*Synthetic, error) {
	cfg.defaults()
	k := cfg.Segments
	names := make([]string, k)
	above := make([][]schema.SegmentID, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("seg-%d", i)
		above[i] = syntheticReads(cfg.Topology, i)
	}
	classes := make([]schema.ClassSpec, k)
	for i := 0; i < k; i++ {
		classes[i] = schema.ClassSpec{
			Name:   fmt.Sprintf("class-%d", i),
			Writes: schema.SegmentID(i),
			Reads:  above[i],
		}
	}
	part, err := schema.NewPartition(names, classes)
	if err != nil {
		return nil, err
	}
	return &Synthetic{cfg: cfg, part: part, above: above}, nil
}

// syntheticReads returns the segments class i reads above its root under
// the topology. Segment 0 is always the top.
func syntheticReads(top Topology, i int) []schema.SegmentID {
	if i == 0 {
		return nil
	}
	switch top {
	case Star:
		return []schema.SegmentID{0}
	case Tree:
		// Parent of node i in a binary heap layout; read the whole
		// ancestor chain.
		var out []schema.SegmentID
		for p := (i - 1) / 2; ; p = (p - 1) / 2 {
			out = append(out, schema.SegmentID(p))
			if p == 0 {
				break
			}
		}
		return out
	default: // Chain
		out := make([]schema.SegmentID, 0, i)
		for j := i - 1; j >= 0; j-- {
			out = append(out, schema.SegmentID(j))
		}
		return out
	}
}

// Partition returns the synthetic partition.
func (w *Synthetic) Partition() *schema.Partition { return w.part }

// Config returns the effective configuration.
func (w *Synthetic) Config() SyntheticConfig { return w.cfg }

// granule picks a granule in segment s, honouring the hot-set skew.
func (w *Synthetic) granule(s schema.SegmentID, r *rand.Rand) schema.GranuleID {
	n := w.cfg.GranulesPerSegment
	hot := n / 100
	if hot < 1 {
		hot = 1
	}
	var key int
	if w.cfg.HotFraction > 0 && r.Float64() < w.cfg.HotFraction {
		key = r.Intn(hot)
	} else {
		key = r.Intn(n)
	}
	return schema.GranuleID{Segment: s, Key: uint64(key)}
}

// UpdateTxn runs one synthetic update transaction of the given class:
// WritesPerTxn read-modify-writes in the root segment, and the remaining
// operations as reads split between the root and higher segments per
// CrossReadFraction.
func (w *Synthetic) UpdateTxn(class schema.ClassID) func(cc.Txn, *rand.Rand) error {
	root := schema.SegmentID(class)
	reads := w.above[class]
	return func(t cc.Txn, r *rand.Rand) error {
		nReads := w.cfg.OpsPerTxn - w.cfg.WritesPerTxn
		for i := 0; i < nReads; i++ {
			var g schema.GranuleID
			if len(reads) > 0 && r.Float64() < w.cfg.CrossReadFraction {
				g = w.granule(reads[r.Intn(len(reads))], r)
			} else {
				g = w.granule(root, r)
			}
			if _, err := t.Read(g); err != nil {
				return err
			}
		}
		for i := 0; i < w.cfg.WritesPerTxn; i++ {
			g := w.granule(root, r)
			old, err := t.Read(g)
			if err != nil {
				return err
			}
			if err := t.Write(g, PutInt64(GetInt64(old)+1)); err != nil {
				return err
			}
		}
		return nil
	}
}

// ReadOnlyTxn runs one synthetic read-only transaction touching nTouch
// granules spread over every segment — off every critical path for Star
// and Tree topologies.
func (w *Synthetic) ReadOnlyTxn(nTouch int) func(cc.Txn, *rand.Rand) error {
	if nTouch <= 0 {
		nTouch = 8
	}
	return func(t cc.Txn, r *rand.Rand) error {
		for i := 0; i < nTouch; i++ {
			s := schema.SegmentID(r.Intn(w.cfg.Segments))
			if _, err := t.Read(w.granule(s, r)); err != nil {
				return err
			}
		}
		return nil
	}
}
