package workload

import (
	"fmt"
	"math/rand"

	"hdd/internal/cc"
	"hdd/internal/schema"
)

// The paper's §1.2.1 retail-inventory application (Figure 2), decomposed
// into the TST-legal hierarchy its transaction analysis induces:
//
//	D0 events     — sales, sales-modification and merchandise-arrival
//	                records (type-1 transactions write here and read only
//	                here: append events, bump per-item sequence counters)
//	D1 inventory  — per-item current inventory level and the last event
//	                sequence folded in (type-2 transactions write here and
//	                read D0)
//	D2 on-order   — merchandise-on-order records (type-3 transactions
//	                write here and read D0 and D1)
//	D3 profiles   — supplier profile records (the paper's "as the list
//	                goes on" extension: reads D0 and D2, writes D3)
//	D4 audit      — optional side branch: reads D0, writes D4. With it the
//	                DHG stops being a single chain, so reads that span D1
//	                and D4 are off every critical path and exercise time
//	                walls (Figures 8–9).
//
// The DHG reduces to the chain D3→D2→D1→D0 (plus D4→D0 with the audit
// branch), a transitive semi-tree.
const (
	SegEvents schema.SegmentID = iota
	SegInventory
	SegOnOrder
	SegProfiles
	SegAudit // only present with WithAudit
)

// Update-transaction classes, one per segment.
const (
	ClassEventEntry schema.ClassID = iota // type 1
	ClassInventory                        // type 2
	ClassReorder                          // type 3
	ClassProfiles                         // profile builder
	ClassAudit                            // audit branch (WithAudit only)
)

// Granule key layout within segments.
const (
	counterBit = uint64(1) << 63 // per-item sequence/order counters
	lastSeqBit = uint64(1) << 62 // inventory: last folded event sequence
)

// EventCounterKey returns the granule holding item's event sequence
// counter (segment D0).
func EventCounterKey(item int) schema.GranuleID {
	return schema.GranuleID{Segment: SegEvents, Key: counterBit | uint64(item)}
}

// EventKey returns the granule of event seq for item (segment D0).
func EventKey(item int, seq int64) schema.GranuleID {
	return schema.GranuleID{Segment: SegEvents, Key: uint64(item)<<32 | uint64(seq)&0xffffffff}
}

// LevelKey returns item's current-inventory-level granule (segment D1).
func LevelKey(item int) schema.GranuleID {
	return schema.GranuleID{Segment: SegInventory, Key: uint64(item)}
}

// LastSeqKey returns item's last-folded-event-sequence granule (segment D1).
func LastSeqKey(item int) schema.GranuleID {
	return schema.GranuleID{Segment: SegInventory, Key: lastSeqBit | uint64(item)}
}

// OrderCounterKey returns item's on-order sequence counter (segment D2).
func OrderCounterKey(item int) schema.GranuleID {
	return schema.GranuleID{Segment: SegOnOrder, Key: counterBit | uint64(item)}
}

// OrderKey returns the granule of on-order record seq for item (segment D2).
func OrderKey(item int, seq int64) schema.GranuleID {
	return schema.GranuleID{Segment: SegOnOrder, Key: uint64(item)<<32 | uint64(seq)&0xffffffff}
}

// ProfileKey returns supplier's profile granule (segment D3).
func ProfileKey(supplier int) schema.GranuleID {
	return schema.GranuleID{Segment: SegProfiles, Key: uint64(supplier)}
}

// AuditKey returns item's audit-summary granule (segment D4).
func AuditKey(item int) schema.GranuleID {
	return schema.GranuleID{Segment: SegAudit, Key: uint64(item)}
}

// InventoryConfig sizes the inventory application.
type InventoryConfig struct {
	// Items is the number of merchandise items. Defaults to 64.
	Items int
	// Suppliers is the number of suppliers. Defaults to 8.
	Suppliers int
	// WithAudit adds the D4 audit branch, turning the chain DHG into a
	// tree (needed by the time-wall experiments).
	WithAudit bool
	// ReorderPoint is the gross inventory level below which a type-3
	// transaction places an order. Defaults to 0.
	ReorderPoint int64
	// ScanWindow bounds how many event records types 2/3/4 visit per run.
	// Defaults to 32.
	ScanWindow int64
}

func (c *InventoryConfig) defaults() {
	if c.Items <= 0 {
		c.Items = 64
	}
	if c.Suppliers <= 0 {
		c.Suppliers = 8
	}
	if c.ScanWindow <= 0 {
		c.ScanWindow = 32
	}
}

// Inventory is an instantiated inventory application bound to a partition.
type Inventory struct {
	cfg  InventoryConfig
	part *schema.Partition
}

// NewInventoryPartition builds the validated TST-legal partition of the
// inventory application (Figure 2 plus extensions).
func NewInventoryPartition(withAudit bool) (*schema.Partition, error) {
	names := []string{"events", "inventory", "on-order", "profiles"}
	classes := []schema.ClassSpec{
		{Name: "type-1 event entry", Writes: SegEvents},
		{Name: "type-2 inventory posting", Writes: SegInventory, Reads: []schema.SegmentID{SegEvents}},
		{Name: "type-3 reorder check", Writes: SegOnOrder, Reads: []schema.SegmentID{SegEvents, SegInventory}},
		{Name: "supplier profile builder", Writes: SegProfiles, Reads: []schema.SegmentID{SegEvents, SegOnOrder}},
	}
	if withAudit {
		names = append(names, "audit")
		classes = append(classes, schema.ClassSpec{
			Name: "event audit", Writes: SegAudit, Reads: []schema.SegmentID{SegEvents},
		})
	}
	return schema.NewPartition(names, classes)
}

// NewInventory builds the application over a fresh partition.
func NewInventory(cfg InventoryConfig) (*Inventory, error) {
	cfg.defaults()
	part, err := NewInventoryPartition(cfg.WithAudit)
	if err != nil {
		return nil, err
	}
	return &Inventory{cfg: cfg, part: part}, nil
}

// Partition returns the application's partition.
func (w *Inventory) Partition() *schema.Partition { return w.part }

// Config returns the effective configuration.
func (w *Inventory) Config() InventoryConfig { return w.cfg }

// EventEntry is the type-1 transaction: record a sale (negative delta),
// sales modification, or merchandise arrival (positive delta) for a random
// item. It reads and writes only the events segment (its root).
func (w *Inventory) EventEntry(t cc.Txn, r *rand.Rand) error {
	item := r.Intn(w.cfg.Items)
	delta := int64(1 + r.Intn(9))
	if r.Intn(2) == 0 {
		delta = -delta // a sale
	}
	ctr, err := t.Read(EventCounterKey(item))
	if err != nil {
		return err
	}
	seq := GetInt64(ctr) + 1
	if err := t.Write(EventKey(item, seq), PutInt64(delta)); err != nil {
		return err
	}
	return t.Write(EventCounterKey(item), PutInt64(seq))
}

// PostInventory is the type-2 transaction: fold all events since the last
// posting into the item's current inventory level. Reads of the events
// segment are cross-class (Protocol A under HDD); the level and
// last-sequence granules are root accesses.
func (w *Inventory) PostInventory(t cc.Txn, r *rand.Rand) error {
	item := r.Intn(w.cfg.Items)
	return w.PostInventoryItem(t, item)
}

// PostInventoryItem folds all unprocessed events of one specific item —
// the deterministic variant of PostInventory used by drain loops and
// audits.
func (w *Inventory) PostInventoryItem(t cc.Txn, item int) error {
	ctr, err := t.Read(EventCounterKey(item)) // cross-class
	if err != nil {
		return err
	}
	latest := GetInt64(ctr)
	lastB, err := t.Read(LastSeqKey(item)) // root
	if err != nil {
		return err
	}
	last := GetInt64(lastB)
	if latest > last+w.cfg.ScanWindow {
		latest = last + w.cfg.ScanWindow
	}
	levelB, err := t.Read(LevelKey(item)) // root
	if err != nil {
		return err
	}
	level := GetInt64(levelB)
	for seq := last + 1; seq <= latest; seq++ {
		ev, err := t.Read(EventKey(item, seq)) // cross-class
		if err != nil {
			return err
		}
		if ev == nil {
			// The event was admitted by the counter we saw, so it must be
			// visible at the same threshold; absence means a broken
			// engine, which the integration tests assert against.
			return fmt.Errorf("workload: event %d/%d missing below counter %d", item, seq, latest)
		}
		level += GetInt64(ev)
	}
	if err := t.Write(LevelKey(item), PutInt64(level)); err != nil {
		return err
	}
	return t.Write(LastSeqKey(item), PutInt64(latest))
}

// ReorderCheck is the type-3 transaction: compute the gross inventory level
// (current level plus non-arrived on-order quantities), and place an order
// if it falls below the reorder point. Reads span the events and inventory
// segments (cross-class) and the on-order segment (root).
func (w *Inventory) ReorderCheck(t cc.Txn, r *rand.Rand) error {
	item := r.Intn(w.cfg.Items)
	levelB, err := t.Read(LevelKey(item)) // cross-class
	if err != nil {
		return err
	}
	gross := GetInt64(levelB)
	// Read recent arrival events (cross-class) the way the paper
	// describes: the transaction verifies arrivals before adjusting
	// records.
	ctr, err := t.Read(EventCounterKey(item)) // cross-class
	if err != nil {
		return err
	}
	latest := GetInt64(ctr)
	for seq := latest - 2; seq <= latest; seq++ {
		if seq < 1 {
			continue
		}
		if _, err := t.Read(EventKey(item, seq)); err != nil { // cross-class
			return err
		}
	}
	octrB, err := t.Read(OrderCounterKey(item)) // root
	if err != nil {
		return err
	}
	orders := GetInt64(octrB)
	lo := orders - w.cfg.ScanWindow
	if lo < 1 {
		lo = 1
	}
	for seq := lo; seq <= orders; seq++ {
		ob, err := t.Read(OrderKey(item, seq)) // root
		if err != nil {
			return err
		}
		if q := GetInt64(ob); q > 0 {
			gross += q // still on order (not arrived)
		}
	}
	if gross < w.cfg.ReorderPoint {
		qty := int64(10 + r.Intn(20))
		if err := t.Write(OrderKey(item, orders+1), PutInt64(qty)); err != nil {
			return err
		}
		return t.Write(OrderCounterKey(item), PutInt64(orders+1))
	}
	// Mark the oldest outstanding order arrived (adjusting the
	// arrival-date field, per the paper) some of the time.
	if orders >= 1 && r.Intn(4) == 0 {
		seq := lo + r.Int63n(orders-lo+1)
		return t.Write(OrderKey(item, seq), PutInt64(0))
	}
	return nil
}

// BuildProfile is the profile-builder transaction (the paper's "supplier
// profile" extension): summarize recent events and on-order records into a
// supplier profile. Reads span events and on-order (cross-class); writes go
// to profiles (root).
func (w *Inventory) BuildProfile(t cc.Txn, r *rand.Rand) error {
	supplier := r.Intn(w.cfg.Suppliers)
	item := r.Intn(w.cfg.Items)
	var volume int64
	ctr, err := t.Read(EventCounterKey(item)) // cross-class
	if err != nil {
		return err
	}
	latest := GetInt64(ctr)
	lo := latest - w.cfg.ScanWindow
	if lo < 1 {
		lo = 1
	}
	for seq := lo; seq <= latest; seq++ {
		ev, err := t.Read(EventKey(item, seq)) // cross-class
		if err != nil {
			return err
		}
		if d := GetInt64(ev); d > 0 {
			volume += d
		}
	}
	octr, err := t.Read(OrderCounterKey(item)) // cross-class
	if err != nil {
		return err
	}
	volume += GetInt64(octr)
	old, err := t.Read(ProfileKey(supplier)) // root
	if err != nil {
		return err
	}
	return t.Write(ProfileKey(supplier), PutInt64(GetInt64(old)+volume))
}

// AuditEvents is the audit-branch transaction (requires WithAudit): count
// events per item into an audit summary. Reads events (cross-class), writes
// audit (root).
func (w *Inventory) AuditEvents(t cc.Txn, r *rand.Rand) error {
	item := r.Intn(w.cfg.Items)
	ctr, err := t.Read(EventCounterKey(item)) // cross-class
	if err != nil {
		return err
	}
	old, err := t.Read(AuditKey(item)) // root
	if err != nil {
		return err
	}
	return t.Write(AuditKey(item), PutInt64(GetInt64(old)+GetInt64(ctr)))
}

// Report is the ad-hoc read-only transaction: inspect levels, outstanding
// orders and (with the audit branch) audit summaries for a handful of
// items. Under HDD it runs as a Protocol C transaction against a time
// wall.
func (w *Inventory) Report(t cc.Txn, r *rand.Rand) error {
	n := 3 + r.Intn(3)
	var sum int64
	for i := 0; i < n; i++ {
		item := r.Intn(w.cfg.Items)
		lv, err := t.Read(LevelKey(item))
		if err != nil {
			return err
		}
		sum += GetInt64(lv)
		oc, err := t.Read(OrderCounterKey(item))
		if err != nil {
			return err
		}
		sum += GetInt64(oc)
		if w.cfg.WithAudit {
			av, err := t.Read(AuditKey(item))
			if err != nil {
				return err
			}
			sum += GetInt64(av)
		}
	}
	_ = sum
	return nil
}
