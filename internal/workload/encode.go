// Package workload provides the applications the experiments run: the
// paper's §1.2.1 retail-inventory database (types 1, 2, 3 and the supplier
// profile extension the paper sketches), the Figure 1 banking example, and
// parameterized synthetic hierarchies for sweeps.
//
// Every workload is expressed as transaction closures over the
// engine-neutral cc.Txn interface, so the same application logic drives
// HDD and every baseline identically.
package workload

import "encoding/binary"

// PutInt64 encodes v as the canonical 8-byte value the workloads store.
func PutInt64(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// GetInt64 decodes a value previously encoded with PutInt64. Nil (granule
// absent) decodes to 0, which every workload treats as the natural initial
// value of a counter or balance.
func GetInt64(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}
