package sched

import (
	"strings"
	"testing"

	"hdd/internal/cc"
	"hdd/internal/schema"
)

func gran(seg, key int) schema.GranuleID {
	return schema.GranuleID{Segment: schema.SegmentID(seg), Key: uint64(key)}
}

// TestReadFromArc: t2 reads t1's version → t2 depends on t1.
func TestReadFromArc(t *testing.T) {
	r := NewRecorder()
	d := gran(0, 1)
	r.RecordBegin(10, 0, false)
	r.RecordWrite(10, d, 10)
	r.RecordCommit(10, 11)
	r.RecordBegin(20, 0, false)
	r.RecordRead(20, d, 10, true)
	r.RecordCommit(20, 21)

	g := r.Build()
	if !g.Succ[20][10] {
		t.Fatalf("missing arc 20→10; graph %v", g.Succ)
	}
	if !g.Serializable() {
		t.Fatal("schedule should be serializable")
	}
	order, ok := g.SerialOrder()
	if !ok {
		t.Fatal("no serial order")
	}
	pos := map[cc.TxnID]int{}
	for i, x := range order {
		pos[x] = i
	}
	if pos[10] > pos[20] {
		t.Fatalf("serial order %v places dependent first", order)
	}
}

// TestPredecessorArc: t1 reads a version, t2 overwrites it → t2 depends on
// t1.
func TestPredecessorArc(t *testing.T) {
	r := NewRecorder()
	d := gran(0, 1)
	r.RecordBegin(10, 0, false)
	r.RecordWrite(10, d, 10)
	r.RecordCommit(10, 11)
	r.RecordBegin(20, 0, false)
	r.RecordRead(20, d, 10, true)
	r.RecordCommit(20, 21)
	r.RecordBegin(30, 0, false)
	r.RecordWrite(30, d, 30)
	r.RecordCommit(30, 31)

	g := r.Build()
	if !g.Succ[30][20] {
		t.Fatalf("missing predecessor arc 30→20; %v", g.Succ)
	}
}

// TestInitialVersionReads: a read of a non-existent granule reads from the
// initial pseudo-transaction; the first writer then depends on the reader.
func TestInitialVersionReads(t *testing.T) {
	r := NewRecorder()
	d := gran(0, 2)
	r.RecordBegin(10, 0, false)
	r.RecordRead(10, d, 0, false)
	r.RecordCommit(10, 11)
	r.RecordBegin(20, 0, false)
	r.RecordWrite(20, d, 20)
	r.RecordCommit(20, 21)

	g := r.Build()
	if !g.Succ[10][0] {
		t.Fatalf("reader should depend on initial txn; %v", g.Succ)
	}
	if !g.Succ[20][10] {
		t.Fatalf("first writer should depend on initial-version reader; %v", g.Succ)
	}
}

// TestLostUpdateCycle is Figure 1 as a schedule: both transactions read
// the same version and both overwrite it — a two-transaction cycle.
func TestLostUpdateCycle(t *testing.T) {
	r := NewRecorder()
	d := gran(0, 3)
	// Initial balance written by txn 5.
	r.RecordBegin(5, 0, false)
	r.RecordWrite(5, d, 5)
	r.RecordCommit(5, 6)
	// t1 and t2 both read version 5, both write.
	r.RecordBegin(10, 0, false)
	r.RecordBegin(20, 0, false)
	r.RecordRead(10, d, 5, true)
	r.RecordRead(20, d, 5, true)
	r.RecordWrite(10, d, 10)
	r.RecordWrite(20, d, 20)
	r.RecordCommit(10, 30)
	r.RecordCommit(20, 31)

	g := r.Build()
	if g.Serializable() {
		t.Fatal("lost update should not be serializable")
	}
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("no cycle found")
	}
	expl := g.ExplainCycle()
	if !strings.Contains(expl, "cycle") {
		t.Fatalf("ExplainCycle output: %s", expl)
	}
	if _, ok := g.SerialOrder(); ok {
		t.Fatal("SerialOrder should fail on a cyclic graph")
	}
}

// TestAbortedTransactionsExcluded: an aborted writer's version and reads
// play no role.
func TestAbortedTransactionsExcluded(t *testing.T) {
	r := NewRecorder()
	d := gran(0, 4)
	r.RecordBegin(10, 0, false)
	r.RecordWrite(10, d, 10)
	r.RecordAbort(10, 11)
	r.RecordBegin(20, 0, false)
	r.RecordRead(20, d, 0, false)
	r.RecordCommit(20, 21)

	g := r.Build()
	for _, n := range g.Nodes {
		if n == 10 {
			t.Fatal("aborted txn in graph")
		}
	}
	if !g.Serializable() {
		t.Fatal("should be serializable")
	}
}

// TestMultiVersionNonConflict: in a multi-version schedule, a reader served
// an old version while a newer version exists is still serializable (the
// reader simply serializes before the overwriting writer).
func TestMultiVersionNonConflict(t *testing.T) {
	r := NewRecorder()
	d := gran(0, 5)
	r.RecordBegin(10, 0, false)
	r.RecordWrite(10, d, 10)
	r.RecordCommit(10, 11)
	r.RecordBegin(30, 0, false)
	r.RecordWrite(30, d, 30)
	r.RecordCommit(30, 31)
	// Reader at 20 reads version 10 even though version 30 exists.
	r.RecordBegin(20, 0, false)
	r.RecordRead(20, d, 10, true)
	r.RecordCommit(20, 32)

	g := r.Build()
	if !g.Serializable() {
		t.Fatalf("multi-version old read should serialize; %s", g.ExplainCycle())
	}
	order, _ := g.SerialOrder()
	pos := map[cc.TxnID]int{}
	for i, x := range order {
		pos[x] = i
	}
	if !(pos[10] < pos[20] && pos[20] < pos[30]) {
		t.Fatalf("serial order %v, want 10 < 20 < 30", order)
	}
}

func TestReadOwnWriteNoSelfArc(t *testing.T) {
	r := NewRecorder()
	d := gran(0, 6)
	r.RecordBegin(10, 0, false)
	r.RecordWrite(10, d, 10)
	r.RecordRead(10, d, 10, true)
	r.RecordCommit(10, 11)
	g := r.Build()
	if g.Succ[10][10] {
		t.Fatal("self arc recorded")
	}
	if !g.Serializable() {
		t.Fatal("should be serializable")
	}
}

func TestNumCommitted(t *testing.T) {
	r := NewRecorder()
	r.RecordBegin(1, 0, false)
	r.RecordBegin(2, 0, false)
	r.RecordBegin(3, 0, false)
	r.RecordCommit(1, 4)
	r.RecordAbort(2, 5)
	if got := r.NumCommitted(); got != 1 {
		t.Fatalf("NumCommitted = %d, want 1", got)
	}
}

func TestExplainNoCycle(t *testing.T) {
	r := NewRecorder()
	g := r.Build()
	if !strings.Contains(g.ExplainCycle(), "serializable") {
		t.Fatal("ExplainCycle on empty graph should say serializable")
	}
}
