// Package sched records multi-version schedules and checks them for
// serializability using the criterion of Hsu (1982) §2 (after
// Bernstein'82): a schedule S(T) is serializable iff its transaction
// dependency graph TG(S(T)) is acyclic, where
//
//	t2 → t1  iff  t2 read a version created by t1, or
//	              t2 created a version whose predecessor was read by t1.
//
// The graph is fully determined by which transaction read which version and
// which transaction created which version (predecessorship is version-
// timestamp order within a granule), so the recorder needs no global step
// ordering — engines may report events from any goroutine.
package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hdd/internal/cc"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// initialTxn is the pseudo-transaction that wrote the initial (absent)
// version of every granule; reads of non-existent granules read from it.
const initialTxn cc.TxnID = 0

// readEvent is one recorded read.
type readEvent struct {
	txn cc.TxnID
	g   schema.GranuleID
	// versionTS is the write timestamp of the version read, or 0 when the
	// read found nothing (the initial version).
	versionTS vclock.Time
}

// writeEvent is one recorded version creation.
type writeEvent struct {
	txn       cc.TxnID
	g         schema.GranuleID
	versionTS vclock.Time
}

// txnInfo is per-transaction metadata.
type txnInfo struct {
	class    schema.ClassID
	readOnly bool
	// outcome: 0 active, 1 committed, 2 aborted.
	outcome uint8
}

// Recorder accumulates a schedule. It implements cc.Recorder and is safe
// for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	txns   map[cc.TxnID]*txnInfo
	reads  []readEvent
	writes []writeEvent
}

var _ cc.Recorder = (*Recorder)(nil)

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{txns: make(map[cc.TxnID]*txnInfo)}
}

// RecordBegin implements cc.Recorder.
func (r *Recorder) RecordBegin(t cc.TxnID, class schema.ClassID, readOnly bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.txns[t] = &txnInfo{class: class, readOnly: readOnly}
}

// RecordRead implements cc.Recorder.
func (r *Recorder) RecordRead(t cc.TxnID, g schema.GranuleID, versionTS vclock.Time, found bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !found {
		versionTS = 0
	}
	r.reads = append(r.reads, readEvent{txn: t, g: g, versionTS: versionTS})
}

// RecordWrite implements cc.Recorder.
func (r *Recorder) RecordWrite(t cc.TxnID, g schema.GranuleID, versionTS vclock.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.writes = append(r.writes, writeEvent{txn: t, g: g, versionTS: versionTS})
}

// RecordCommit implements cc.Recorder.
func (r *Recorder) RecordCommit(t cc.TxnID, _ vclock.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ti := r.txns[t]; ti != nil {
		ti.outcome = 1
	}
}

// RecordAbort implements cc.Recorder.
func (r *Recorder) RecordAbort(t cc.TxnID, _ vclock.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ti := r.txns[t]; ti != nil {
		ti.outcome = 2
	}
}

// NumCommitted returns the number of committed transactions recorded.
func (r *Recorder) NumCommitted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ti := range r.txns {
		if ti.outcome == 1 {
			n++
		}
	}
	return n
}

// DependencyGraph is the materialized TG(S(T)) over committed transactions.
type DependencyGraph struct {
	// Nodes lists committed transaction ids in increasing order, including
	// the initial pseudo-transaction 0 when referenced.
	Nodes []cc.TxnID
	// Succ maps t2 to the set of t1 with an arc t2 → t1 ("t2 depends on
	// t1").
	Succ map[cc.TxnID]map[cc.TxnID]bool
	// Why records one human-readable justification per arc, keyed
	// "t2->t1".
	Why map[string]string
}

// Build materializes the dependency graph of the committed schedule.
// Events of aborted and still-active transactions are excluded: their
// versions never became visible and their reads registered nothing that
// survives (this matches the paper, which defines schedules over completed
// transactions).
func (r *Recorder) Build() *DependencyGraph {
	r.mu.Lock()
	defer r.mu.Unlock()

	committed := func(t cc.TxnID) bool {
		if t == initialTxn {
			return true
		}
		ti := r.txns[t]
		return ti != nil && ti.outcome == 1
	}

	g := &DependencyGraph{
		Succ: make(map[cc.TxnID]map[cc.TxnID]bool),
		Why:  make(map[string]string),
	}
	nodes := map[cc.TxnID]bool{}
	addArc := func(from, to cc.TxnID, why string) {
		if from == to {
			return
		}
		nodes[from], nodes[to] = true, true
		if g.Succ[from] == nil {
			g.Succ[from] = make(map[cc.TxnID]bool)
		}
		if !g.Succ[from][to] {
			g.Succ[from][to] = true
			g.Why[fmt.Sprintf("%d->%d", from, to)] = why
		}
	}

	// Committed versions per granule, ordered by version timestamp; the
	// writer of each.
	type verKey struct {
		g  schema.GranuleID
		ts vclock.Time
	}
	writer := map[verKey]cc.TxnID{}
	versionsOf := map[schema.GranuleID][]vclock.Time{}
	for _, w := range r.writes {
		if !committed(w.txn) {
			continue
		}
		writer[verKey{w.g, w.versionTS}] = w.txn
		versionsOf[w.g] = append(versionsOf[w.g], w.versionTS)
		nodes[w.txn] = true
	}
	for gran := range versionsOf {
		vs := versionsOf[gran]
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		versionsOf[gran] = vs
	}
	// The initial version 0 exists for every granule ever read or written.
	// successorOf(g, ts) is the next committed version after ts.
	successorOf := func(gran schema.GranuleID, ts vclock.Time) (vclock.Time, bool) {
		vs := versionsOf[gran]
		i := sort.Search(len(vs), func(i int) bool { return vs[i] > ts })
		if i < len(vs) {
			return vs[i], true
		}
		return 0, false
	}

	for _, t := range sortedCommitted(r.txns) {
		nodes[t] = true
	}

	// Version-order arcs (Bernstein-Goodman): the writer of each version
	// depends on the writer of its predecessor. The paper's §2 definition
	// omits these because its protocols always align version order with
	// the serialization order; for *arbitrary* engines — including the
	// deliberately broken ones of Figures 3–4 — they are required for the
	// checker to be complete (e.g. the Figure 1 lost update, where a
	// transaction overwrites a version it never read, is only caught
	// through them). Consecutive arcs suffice: transitivity covers the
	// rest.
	for gran, vs := range versionsOf {
		for i := 0; i+1 < len(vs); i++ {
			w1 := writer[verKey{gran, vs[i]}]
			w2 := writer[verKey{gran, vs[i+1]}]
			addArc(w2, w1, fmt.Sprintf("t%d wrote %v@%d after t%d wrote @%d (version order)", w2, gran, vs[i+1], w1, vs[i]))
		}
	}

	for _, rd := range r.reads {
		if !committed(rd.txn) {
			continue
		}
		// Rule 1: reader depends on the writer of the version it read.
		w := initialTxn
		if rd.versionTS != 0 {
			var ok bool
			w, ok = writer[verKey{rd.g, rd.versionTS}]
			if !ok {
				// The version's writer aborted after the read was
				// recorded, or the read was of an uncommitted version:
				// either way the engine is broken — surface it as a
				// self-evident inconsistency arc to the initial txn is
				// wrong, so panic instead.
				panic(fmt.Sprintf("sched: committed txn %d read version %v@%d with no committed writer", rd.txn, rd.g, rd.versionTS))
			}
		}
		addArc(rd.txn, w, fmt.Sprintf("t%d read %v@%d written by t%d", rd.txn, rd.g, rd.versionTS, w))
		// Rule 2: the writer of the successor version depends on the
		// reader of its predecessor.
		if succTS, ok := successorOf(rd.g, rd.versionTS); ok {
			sw := writer[verKey{rd.g, succTS}]
			addArc(sw, rd.txn, fmt.Sprintf("t%d overwrote %v@%d which t%d read", sw, rd.g, rd.versionTS, rd.txn))
		}
	}
	// Note: rule 2 relates a version's writer to every reader of its
	// predecessor; reads are the only way predecessorship becomes a
	// dependency, so iterating reads covers it.

	g.Nodes = make([]cc.TxnID, 0, len(nodes))
	for t := range nodes {
		g.Nodes = append(g.Nodes, t)
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i] < g.Nodes[j] })
	return g
}

func sortedCommitted(txns map[cc.TxnID]*txnInfo) []cc.TxnID {
	var out []cc.TxnID
	for t, ti := range txns {
		if ti.outcome == 1 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindCycle returns one dependency cycle as a transaction sequence (first
// repeated last), or nil if the graph is acyclic.
func (g *DependencyGraph) FindCycle() []cc.TxnID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[cc.TxnID]int{}
	parent := map[cc.TxnID]cc.TxnID{}
	var cycle []cc.TxnID
	var dfs func(u cc.TxnID) bool
	dfs = func(u cc.TxnID) bool {
		color[u] = grey
		// Deterministic order for reproducible diagnostics.
		succ := make([]cc.TxnID, 0, len(g.Succ[u]))
		for v := range g.Succ[u] {
			succ = append(succ, v)
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i] < succ[j] })
		for _, v := range succ {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				cycle = []cc.TxnID{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				cycle = append(cycle, v)
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, u := range g.Nodes {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// Serializable reports whether the dependency graph is acyclic — the §2
// criterion for correctness.
func (g *DependencyGraph) Serializable() bool { return g.FindCycle() == nil }

// SerialOrder returns a serialization (topological order) of the committed
// transactions and true, or nil and false if the schedule is not
// serializable. The order lists dependencies first: if t2 → t1 (t2 depends
// on t1), t1 appears before t2 — so it is a valid equivalent serial
// execution order.
func (g *DependencyGraph) SerialOrder() ([]cc.TxnID, bool) {
	indeg := map[cc.TxnID]int{}
	for _, u := range g.Nodes {
		indeg[u] += 0
	}
	// Arc u→v means u depends on v: v must come first. Count in-degrees on
	// the reversed graph.
	radj := map[cc.TxnID][]cc.TxnID{}
	for u, succ := range g.Succ {
		for v := range succ {
			radj[v] = append(radj[v], u)
			indeg[u]++
		}
	}
	var frontier []cc.TxnID
	for u, d := range indeg {
		if d == 0 {
			frontier = append(frontier, u)
		}
	}
	var order []cc.TxnID
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, u)
		for _, v := range radj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, false
	}
	return order, true
}

// ExplainCycle renders a found cycle with per-arc justifications, for
// anomaly reports (Figures 3 and 4).
func (g *DependencyGraph) ExplainCycle() string {
	cycle := g.FindCycle()
	if cycle == nil {
		return "no cycle: schedule is serializable"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dependency cycle of %d transactions:\n", len(cycle)-1)
	for i := 0; i+1 < len(cycle); i++ {
		key := fmt.Sprintf("%d->%d", cycle[i], cycle[i+1])
		fmt.Fprintf(&b, "  t%d → t%d: %s\n", cycle[i], cycle[i+1], g.Why[key])
	}
	return b.String()
}
