package sched

import (
	"testing"

	"hdd/internal/cc"
	"hdd/internal/vclock"
)

// buildBigSchedule records w writers and r readers over g granules.
func buildBigSchedule(writers, readers, granules int) *Recorder {
	rec := NewRecorder()
	var t cc.TxnID = 1
	for i := 0; i < writers; i++ {
		rec.RecordBegin(t, 0, false)
		rec.RecordWrite(t, gran(0, i%granules), vclock.Time(t))
		rec.RecordCommit(t, vclock.Time(t)+1)
		t += 2
	}
	for i := 0; i < readers; i++ {
		rec.RecordBegin(t, 0, true)
		// Read the first version written to granule k (by writer k, whose
		// id is 1+2k).
		k := i % granules
		rec.RecordRead(t, gran(0, k), vclock.Time(1+2*k), true)
		rec.RecordCommit(t, vclock.Time(t)+1)
		t += 2
	}
	return rec
}

func BenchmarkBuildDependencyGraph(b *testing.B) {
	rec := buildBigSchedule(2000, 2000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := rec.Build()
		if len(g.Nodes) == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkFindCycleAcyclic(b *testing.B) {
	rec := buildBigSchedule(2000, 2000, 64)
	g := rec.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.FindCycle() != nil {
			b.Fatal("unexpected cycle")
		}
	}
}

func BenchmarkSerialOrder(b *testing.B) {
	rec := buildBigSchedule(1000, 1000, 64)
	g := rec.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.SerialOrder(); !ok {
			b.Fatal("no order")
		}
	}
}
