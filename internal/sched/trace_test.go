package sched

import (
	"strings"
	"testing"

	"hdd/internal/cc"
)

func TestTracingRecorderEvents(t *testing.T) {
	r := NewTracingRecorder(0)
	d := gran(0, 1)
	r.RecordBegin(10, 0, false)
	r.RecordWrite(10, d, 10)
	r.RecordCommit(10, 11)
	r.RecordBegin(20, 1, false)
	r.RecordRead(20, d, 10, true)
	r.RecordAbort(20, 21)
	r.RecordBegin(30, 0, true)
	r.RecordRead(30, gran(0, 9), 0, false)

	events := r.Events()
	if len(events) != 8 {
		t.Fatalf("events = %d, want 8", len(events))
	}
	joined := strings.Join(events, "\n")
	for _, want := range []string{"begin", "write", "commit", "read", "abort", "read-only", "@initial"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q:\n%s", want, joined)
		}
	}
	// The embedded Recorder still builds the graph.
	if !r.Build().Serializable() {
		t.Fatal("graph lost")
	}
}

func TestTracingRecorderDumpFilter(t *testing.T) {
	r := NewTracingRecorder(0)
	d := gran(0, 1)
	r.RecordBegin(10, 0, false)
	r.RecordWrite(10, d, 10)
	r.RecordCommit(10, 11)
	r.RecordBegin(20, 0, false)
	r.RecordRead(20, d, 10, true)
	r.RecordCommit(20, 21)

	var all, filtered strings.Builder
	if err := r.Dump(&all); err != nil {
		t.Fatal(err)
	}
	if err := r.Dump(&filtered, 20); err != nil {
		t.Fatal(err)
	}
	if strings.Count(all.String(), "\n") != 6 {
		t.Fatalf("unfiltered dump:\n%s", all.String())
	}
	if strings.Contains(filtered.String(), "t10 ") {
		t.Fatalf("filter leaked t10:\n%s", filtered.String())
	}
	if strings.Count(filtered.String(), "\n") != 3 {
		t.Fatalf("filtered dump:\n%s", filtered.String())
	}
}

func TestTracingRecorderDumpCycle(t *testing.T) {
	r := NewTracingRecorder(0)
	d := gran(0, 3)
	// The Figure 1 lost update.
	r.RecordBegin(5, 0, false)
	r.RecordWrite(5, d, 5)
	r.RecordCommit(5, 6)
	r.RecordBegin(10, 0, false)
	r.RecordBegin(20, 0, false)
	r.RecordRead(10, d, 5, true)
	r.RecordRead(20, d, 5, true)
	r.RecordWrite(10, d, 10)
	r.RecordWrite(20, d, 20)
	r.RecordCommit(10, 30)
	r.RecordCommit(20, 31)

	out := r.DumpCycle()
	if out == "" {
		t.Fatal("cycle not reported")
	}
	if !strings.Contains(out, "cycle") || !strings.Contains(out, "trace of the transactions") {
		t.Fatalf("dump incomplete:\n%s", out)
	}

	// Serializable schedules dump nothing.
	r2 := NewTracingRecorder(0)
	r2.RecordBegin(1, 0, false)
	r2.RecordCommit(1, 2)
	if r2.DumpCycle() != "" {
		t.Fatal("cycle reported on serializable schedule")
	}
}

func TestTracingRecorderLimit(t *testing.T) {
	r := NewTracingRecorder(3)
	for i := 1; i <= 10; i++ {
		r.RecordBegin(cc.TxnID(i), 0, false)
	}
	if len(r.Events()) != 3 {
		t.Fatalf("limit not applied: %d events", len(r.Events()))
	}
}
