package sched

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"hdd/internal/cc"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// TracingRecorder wraps a Recorder with an ordered, human-readable event
// log — the tool for post-morteming a non-serializable schedule: the
// dependency graph says *what* conflicts, the trace says *when* each step
// happened relative to the others.
//
// Ordering is by arrival at the recorder, which is a linearization of the
// engine's own synchronization for events on the same granule/transaction;
// unrelated events may interleave arbitrarily, as in the real execution.
type TracingRecorder struct {
	*Recorder
	mu     sync.Mutex
	events []string
	limit  int
}

var _ cc.Recorder = (*TracingRecorder)(nil)

// NewTracingRecorder returns a recorder that additionally retains up to
// limit formatted events (0 means a generous default).
func NewTracingRecorder(limit int) *TracingRecorder {
	if limit <= 0 {
		limit = 1 << 18
	}
	return &TracingRecorder{Recorder: NewRecorder(), limit: limit}
}

func (r *TracingRecorder) trace(format string, args ...any) {
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, fmt.Sprintf(format, args...))
	}
	r.mu.Unlock()
}

// RecordBegin implements cc.Recorder.
func (r *TracingRecorder) RecordBegin(t cc.TxnID, class schema.ClassID, readOnly bool) {
	r.Recorder.RecordBegin(t, class, readOnly)
	kind := fmt.Sprintf("class %d", class)
	if readOnly {
		kind = "read-only"
	}
	r.trace("begin  t%-6d %s", t, kind)
}

// RecordRead implements cc.Recorder.
func (r *TracingRecorder) RecordRead(t cc.TxnID, g schema.GranuleID, versionTS vclock.Time, found bool) {
	r.Recorder.RecordRead(t, g, versionTS, found)
	if found {
		r.trace("read   t%-6d %v@%d", t, g, versionTS)
	} else {
		r.trace("read   t%-6d %v@initial", t, g)
	}
}

// RecordWrite implements cc.Recorder.
func (r *TracingRecorder) RecordWrite(t cc.TxnID, g schema.GranuleID, versionTS vclock.Time) {
	r.Recorder.RecordWrite(t, g, versionTS)
	r.trace("write  t%-6d %v@%d", t, g, versionTS)
}

// RecordCommit implements cc.Recorder.
func (r *TracingRecorder) RecordCommit(t cc.TxnID, at vclock.Time) {
	r.Recorder.RecordCommit(t, at)
	r.trace("commit t%-6d @%d", t, at)
}

// RecordAbort implements cc.Recorder.
func (r *TracingRecorder) RecordAbort(t cc.TxnID, at vclock.Time) {
	r.Recorder.RecordAbort(t, at)
	r.trace("abort  t%-6d @%d", t, at)
}

// Events returns a copy of the retained event lines in arrival order.
func (r *TracingRecorder) Events() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

// Dump writes the trace to w, optionally filtered to the given transaction
// ids (nil means everything).
func (r *TracingRecorder) Dump(w io.Writer, only ...cc.TxnID) error {
	keep := map[string]bool{}
	for _, id := range only {
		keep[fmt.Sprintf("t%-6d", id)] = true
	}
	for _, line := range r.Events() {
		if len(keep) > 0 {
			matched := false
			for k := range keep {
				if strings.Contains(line, k) {
					matched = true
					break
				}
			}
			if !matched {
				continue
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// DumpCycle renders a failing schedule for diagnosis: the dependency-graph
// cycle with per-arc justifications, followed by the trace filtered to the
// transactions on the cycle. Returns "" when the schedule is serializable.
func (r *TracingRecorder) DumpCycle() string {
	g := r.Build()
	cycle := g.FindCycle()
	if cycle == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(g.ExplainCycle())
	b.WriteString("trace of the transactions on the cycle:\n")
	uniq := map[cc.TxnID]bool{}
	var ids []cc.TxnID
	for _, id := range cycle {
		if !uniq[id] {
			uniq[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	_ = r.Dump(&b, ids...)
	return b.String()
}
