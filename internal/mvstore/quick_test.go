package mvstore

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// opScript is a quick-generated random operation sequence over one store.
type opScript struct {
	ops []scriptOp
}

type scriptOp struct {
	kind     uint8 // 0 install+commit, 1 install+abort, 2 readBefore, 3 readRegistered, 4 gc
	granule  uint8
	ts       uint16
	value    byte
	bound    uint16
	readerTS uint16
}

// Generate implements quick.Generator.
func (opScript) Generate(r *rand.Rand, size int) reflect.Value {
	n := 10 + r.Intn(size*4+1)
	s := opScript{ops: make([]scriptOp, n)}
	for i := range s.ops {
		s.ops[i] = scriptOp{
			kind:     uint8(r.Intn(5)),
			granule:  uint8(r.Intn(6)),
			ts:       uint16(1 + r.Intn(500)),
			value:    byte(r.Intn(256)),
			bound:    uint16(1 + r.Intn(600)),
			readerTS: uint16(1 + r.Intn(600)),
		}
	}
	return reflect.ValueOf(s)
}

// TestQuickStoreInvariants: after any random operation sequence,
//
//  1. every chain is strictly ordered by timestamp,
//  2. no pending version survives (every install was resolved),
//  3. ReadCommittedBefore(bound) returns the maximal committed version
//     below bound (cross-checked against a model map),
//  4. a registered read timestamp is never below the version's own ts
//     unless it was registered by an older reader (rts can be anything
//     ≥ 0, but never decreases).
func TestQuickStoreInvariants(t *testing.T) {
	f := func(script opScript) bool {
		s := New()
		// model[g] = committed (ts, value) pairs.
		model := map[uint8]map[vclock.Time]byte{}
		for _, op := range script.ops {
			g := schema.GranuleID{Segment: 0, Key: uint64(op.granule)}
			ts := vclock.Time(op.ts)
			switch op.kind {
			case 0, 1:
				if err := s.InstallChecked(g, ts, []byte{op.value}); err != nil {
					continue // rejected: model unchanged
				}
				if op.kind == 0 {
					s.Commit(g, ts)
					if model[op.granule] == nil {
						model[op.granule] = map[vclock.Time]byte{}
					}
					model[op.granule][ts] = op.value
				} else {
					s.Abort(g, ts)
				}
			case 2:
				s.ReadCommittedBefore(g, vclock.Time(op.bound))
			case 3:
				// No pending versions exist between installs (they are
				// resolved immediately), so this never blocks.
				_, _, _, wait := s.ReadRegistered(g, vclock.Time(op.bound), vclock.Time(op.readerTS))
				if wait != nil {
					return false
				}
			case 4:
				// GC at a low watermark is always safe; emulate the
				// "keep latest below watermark" contract in the model by
				// not GC-ing the model (reads at bounds ≥ watermark must
				// still agree). Use a small watermark to keep it valid.
				s.GC(vclock.Time(op.bound) / 4)
				for gid, vs := range model {
					// Drop model versions strictly older than the kept one.
					w := vclock.Time(op.bound) / 4
					var keep vclock.Time = -1
					for ts := range vs {
						if ts < w && ts > keep {
							keep = ts
						}
					}
					for ts := range vs {
						if ts < keep {
							delete(model[gid], ts)
						}
					}
				}
			}
		}
		// Invariants.
		for gk := uint8(0); gk < 6; gk++ {
			g := schema.GranuleID{Segment: 0, Key: uint64(gk)}
			vs := s.Versions(g)
			for i := range vs {
				if vs[i].State != Committed {
					return false // pending survived
				}
				if i > 0 && vs[i-1].TS >= vs[i].TS {
					return false // out of order
				}
			}
			// Cross-check reads at every interesting bound.
			for _, bound := range []vclock.Time{1, 64, 200, 400, 601} {
				gotV, gotTS, gotOK := s.ReadCommittedBefore(g, bound)
				var wantTS vclock.Time = -1
				var wantV byte
				for ts, val := range model[gk] {
					if ts < bound && ts > wantTS {
						wantTS, wantV = ts, val
					}
				}
				if gotOK != (wantTS >= 0) {
					return false
				}
				if gotOK && (gotTS != wantTS || !bytes.Equal(gotV, []byte{wantV})) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
