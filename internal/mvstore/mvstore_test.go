package mvstore

import (
	"errors"
	"sync"
	"testing"

	"hdd/internal/schema"
	"hdd/internal/vclock"
)

func g(seg, key int) schema.GranuleID {
	return schema.GranuleID{Segment: schema.SegmentID(seg), Key: uint64(key)}
}

func TestInstallCommitRead(t *testing.T) {
	s := New()
	gr := g(0, 1)
	if err := s.InstallPending(gr, 10, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Pending versions are invisible.
	if _, _, ok := s.ReadCommittedBefore(gr, 100); ok {
		t.Fatal("pending version visible")
	}
	s.Commit(gr, 10)
	v, ts, ok := s.ReadCommittedBefore(gr, 100)
	if !ok || ts != 10 || string(v) != "a" {
		t.Fatalf("read = %q,%d,%v", v, ts, ok)
	}
	// Bound is exclusive.
	if _, _, ok := s.ReadCommittedBefore(gr, 10); ok {
		t.Fatal("bound should be exclusive")
	}
}

func TestVersionOrderingAndSelection(t *testing.T) {
	s := New()
	gr := g(0, 2)
	for _, ts := range []vclock.Time{30, 10, 20} {
		if err := s.InstallPending(gr, ts, []byte{byte(ts)}); err != nil {
			t.Fatal(err)
		}
		s.Commit(gr, ts)
	}
	for _, c := range []struct {
		bound vclock.Time
		want  vclock.Time
		ok    bool
	}{{5, 0, false}, {11, 10, true}, {25, 20, true}, {100, 30, true}} {
		v, ts, ok := s.ReadCommittedBefore(gr, c.bound)
		if ok != c.ok || (ok && ts != c.want) {
			t.Fatalf("bound %d: got %d,%v want %d,%v", c.bound, ts, ok, c.want, c.ok)
		}
		if ok && v[0] != byte(c.want) {
			t.Fatalf("bound %d: wrong value", c.bound)
		}
	}
}

func TestDuplicateVersionRejected(t *testing.T) {
	s := New()
	gr := g(0, 3)
	if err := s.InstallPending(gr, 10, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallPending(gr, 10, nil); !errors.Is(err, ErrVersionExists) {
		t.Fatalf("err = %v, want ErrVersionExists", err)
	}
}

func TestAbortRemovesVersion(t *testing.T) {
	s := New()
	gr := g(0, 4)
	_ = s.InstallPending(gr, 10, []byte("x"))
	s.Abort(gr, 10)
	if _, _, ok := s.ReadCommittedBefore(gr, 100); ok {
		t.Fatal("aborted version visible")
	}
	if got := s.Stats().VersionsAborted; got != 1 {
		t.Fatalf("VersionsAborted = %d", got)
	}
	// Aborting twice is a no-op.
	s.Abort(gr, 10)
}

func TestReadRegisteredWaitsForPending(t *testing.T) {
	s := New()
	gr := g(0, 5)
	_ = s.InstallPending(gr, 10, []byte("old"))
	s.Commit(gr, 10)
	_ = s.InstallPending(gr, 20, []byte("new"))

	// Reader at 30: latest below bound is the pending v20 → must wait.
	_, _, _, wait := s.ReadRegistered(gr, 30, 30)
	if wait == nil {
		t.Fatal("expected wait for pending version")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-wait
	}()
	s.Commit(gr, 20)
	wg.Wait()
	v, ts, ok, wait2 := s.ReadRegistered(gr, 30, 30)
	if wait2 != nil || !ok || ts != 20 || string(v) != "new" {
		t.Fatalf("after commit: %q,%d,%v", v, ts, ok)
	}

	// Reader at 15 is not blocked by the pending v20 (above its bound).
	_ = s.InstallPending(gr, 40, []byte("newer"))
	v, ts, ok, wait3 := s.ReadRegistered(gr, 15, 15)
	if wait3 != nil || !ok || ts != 10 || string(v) != "old" {
		t.Fatalf("bounded read: %q,%d,%v waited=%v", v, ts, ok, wait3 != nil)
	}
}

func TestReadRegisteredAbortedRetry(t *testing.T) {
	s := New()
	gr := g(0, 6)
	_ = s.InstallPending(gr, 10, []byte("base"))
	s.Commit(gr, 10)
	_ = s.InstallPending(gr, 20, []byte("doomed"))
	_, _, _, wait := s.ReadRegistered(gr, 30, 30)
	if wait == nil {
		t.Fatal("expected wait")
	}
	s.Abort(gr, 20)
	<-wait
	v, ts, ok, w2 := s.ReadRegistered(gr, 30, 30)
	if w2 != nil || !ok || ts != 10 || string(v) != "base" {
		t.Fatalf("retry read = %q,%d,%v", v, ts, ok)
	}
}

func TestInstallCheckedReadInvalidation(t *testing.T) {
	s := New()
	gr := g(0, 7)
	_ = s.InstallPending(gr, 10, []byte("v10"))
	s.Commit(gr, 10)
	// Reader at 30 reads v10, registering rts 30.
	if _, _, ok, _ := s.ReadRegistered(gr, 30, 30); !ok {
		t.Fatal("read failed")
	}
	// A writer at 20 would invalidate that read: rejected.
	err := s.InstallChecked(gr, 20, []byte("v20"))
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want RejectedError", err)
	}
	// A writer at 40 is fine.
	if err := s.InstallChecked(gr, 40, []byte("v40")); err != nil {
		t.Fatal(err)
	}
}

func TestInstallCheckedNewerVersionExists(t *testing.T) {
	s := New()
	gr := g(0, 8)
	_ = s.InstallPending(gr, 30, nil)
	s.Commit(gr, 30)
	err := s.InstallChecked(gr, 20, nil)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want RejectedError (newer version)", err)
	}
	if err := s.InstallChecked(gr, 30, nil); !errors.Is(err, ErrVersionExists) {
		t.Fatalf("err = %v, want ErrVersionExists", err)
	}
}

func TestWriteCheck(t *testing.T) {
	s := New()
	gr := g(0, 9)
	if err := s.WriteCheck(gr, 10); err != nil {
		t.Fatalf("WriteCheck on empty chain: %v", err)
	}
	_ = s.InstallPending(gr, 10, nil)
	s.Commit(gr, 10)
	if _, _, ok, _ := s.ReadRegistered(gr, 25, 25); !ok {
		t.Fatal("read failed")
	}
	if err := s.WriteCheck(gr, 20); err == nil {
		t.Fatal("WriteCheck should reject write below a registered read")
	}
	if err := s.WriteCheck(gr, 30); err != nil {
		t.Fatalf("WriteCheck(30): %v", err)
	}
}

func TestUpdatePending(t *testing.T) {
	s := New()
	gr := g(0, 10)
	_ = s.InstallPending(gr, 10, []byte("a"))
	s.UpdatePending(gr, 10, []byte("b"))
	s.Commit(gr, 10)
	v, _, _ := s.ReadCommittedBefore(gr, 100)
	if string(v) != "b" {
		t.Fatalf("value = %q, want b", v)
	}
}

func TestUpdatePendingMissingPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.UpdatePending(g(0, 11), 10, nil)
}

func TestCommitAtAndReadAsOf(t *testing.T) {
	s := New()
	gr := g(0, 12)
	_ = s.InstallPending(gr, 10, []byte("a"))
	s.CommitAt(gr, 10, 50)
	_ = s.InstallPending(gr, 20, []byte("b"))
	s.CommitAt(gr, 20, 60)
	if v, _, ok := s.ReadCommittedAsOf(gr, 55); !ok || string(v) != "a" {
		t.Fatalf("asOf 55 = %q,%v", v, ok)
	}
	if v, _, ok := s.ReadCommittedAsOf(gr, 61); !ok || string(v) != "b" {
		t.Fatalf("asOf 61 = %q,%v", v, ok)
	}
	if _, _, ok := s.ReadCommittedAsOf(gr, 50); ok {
		t.Fatal("asOf bound should be exclusive")
	}
	// Pending versions are skipped.
	_ = s.InstallPending(gr, 30, []byte("c"))
	if v, _, ok := s.ReadCommittedAsOf(gr, 100); !ok || string(v) != "b" {
		t.Fatalf("asOf with pending = %q,%v", v, ok)
	}
}

func TestGC(t *testing.T) {
	s := New()
	gr := g(0, 13)
	for ts := vclock.Time(10); ts <= 50; ts += 10 {
		_ = s.InstallPending(gr, ts, []byte{byte(ts)})
		s.Commit(gr, ts)
	}
	if n := s.TotalVersions(); n != 5 {
		t.Fatalf("TotalVersions = %d", n)
	}
	// Watermark 35: versions 10, 20 are droppable; 30 is the latest
	// committed below the watermark and must survive.
	pruned := s.GC(35)
	if pruned != 2 {
		t.Fatalf("pruned = %d, want 2", pruned)
	}
	if v, ts, ok := s.ReadCommittedBefore(gr, 35); !ok || ts != 30 || v[0] != 30 {
		t.Fatalf("post-GC read at watermark = %d,%v", ts, ok)
	}
	if v, ts, ok := s.ReadCommittedBefore(gr, 100); !ok || ts != 50 || v[0] != 50 {
		t.Fatalf("post-GC latest = %d,%v", ts, ok)
	}
	// GC below everything is a no-op.
	if n := s.GC(5); n != 0 {
		t.Fatalf("GC(5) pruned %d", n)
	}
}

func TestGCKeepsPending(t *testing.T) {
	s := New()
	gr := g(0, 14)
	_ = s.InstallPending(gr, 10, nil)
	s.Commit(gr, 10)
	_ = s.InstallPending(gr, 20, nil)
	s.Commit(gr, 20)
	_ = s.InstallPending(gr, 25, nil) // pending below watermark: broken
	// watermark, but GC must stay safe
	pruned := s.GC(30)
	_ = pruned
	vs := s.Versions(gr)
	for _, v := range vs {
		if v.TS == 25 && v.State != Pending {
			t.Fatal("pending version corrupted")
		}
	}
	// The pending version must still be there.
	found := false
	for _, v := range vs {
		if v.TS == 25 {
			found = true
		}
	}
	if !found {
		t.Fatal("pending version pruned")
	}
}

func TestValueIsolation(t *testing.T) {
	s := New()
	gr := g(0, 15)
	buf := []byte("mutable")
	_ = s.InstallPending(gr, 10, buf)
	buf[0] = 'X'
	s.Commit(gr, 10)
	v, _, _ := s.ReadCommittedBefore(gr, 100)
	if string(v) != "mutable" {
		t.Fatalf("stored value aliased caller buffer: %q", v)
	}
	// Reads are zero-copy by contract: the slice aliases immutable store
	// memory (callers must not modify it; engines copy at the cc.Txn
	// boundary). Overwriting the writer's pending version must never touch
	// bytes a reader already holds — UpdatePending swaps the slice.
	gr2 := g(0, 115)
	_ = s.InstallPending(gr2, 10, []byte("first"))
	s.Commit(gr2, 10)
	v2, _, _ := s.ReadCommittedBefore(gr2, 100)
	_ = s.InstallPending(gr2, 20, []byte("initial"))
	s.UpdatePending(gr2, 20, []byte("rewrite"))
	s.Commit(gr2, 20)
	if string(v2) != "first" {
		t.Fatalf("held read mutated by later writes: %q", v2)
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	gr := g(0, 16)
	_ = s.InstallPending(gr, 10, nil)
	s.Commit(gr, 10)
	_, _, _, _ = s.ReadRegistered(gr, 20, 20)
	st := s.Stats()
	if st.VersionsInstalled != 1 || st.ReadRegistrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := New()
	clock := vclock.NewClock()
	const granules = 32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				gr := g(0, (w*31+i)%granules)
				ts := clock.Tick()
				if err := s.InstallChecked(gr, ts, []byte{byte(i)}); err == nil {
					if i%7 == 0 {
						s.Abort(gr, ts)
					} else {
						s.Commit(gr, ts)
					}
				}
				s.ReadCommittedBefore(gr, clock.Tick())
				s.ReadRegistered(gr, ts, ts)
			}
		}(w)
	}
	wg.Wait()
	// Every chain must be ordered and contain no pending versions.
	for k := 0; k < granules; k++ {
		vs := s.Versions(g(0, k))
		for i := range vs {
			if vs[i].State == Pending {
				t.Fatalf("granule %d: pending version leaked", k)
			}
			if i > 0 && vs[i-1].TS >= vs[i].TS {
				t.Fatalf("granule %d: chain out of order", k)
			}
		}
	}
}
