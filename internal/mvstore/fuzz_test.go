package mvstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

// FuzzCheckpointDecode hammers ReadCheckpoint with hostile inputs. The
// decoder must never panic or over-allocate, and anything it accepts must
// round-trip: re-encoding the decoded store yields a checkpoint with the
// same contents and high-water mark. Seeds cover the interesting shapes;
// the checked-in corpus under testdata/fuzz runs on every `go test`.
func FuzzCheckpointDecode(f *testing.F) {
	// A real empty and a real populated checkpoint.
	f.Add(checkpointBytes(f, func(s *Store) {}))
	f.Add(checkpointBytes(f, func(s *Store) {
		_ = s.InstallPending(g(0, 7), 10, []byte("hello"))
		s.CommitAt(g(0, 7), 10, 11)
		_ = s.InstallPending(g(1, 3), 20, []byte{0xff, 0x00})
		s.CommitAt(g(1, 3), 20, 21)
	}))
	// Hostile shapes: empty, wrong magic, truncated trailer, flipped
	// payload byte, and a CRC-valid body with a forged value length.
	f.Add([]byte{})
	f.Add([]byte("NOTACKPTxxxx"))
	f.Add([]byte(checkpointMagic))
	flipped := checkpointBytes(f, func(s *Store) {
		_ = s.InstallPending(g(0, 1), 5, []byte("x"))
		s.Commit(g(0, 1), 5)
	})
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add(withValidCRC(append([]byte(checkpointMagic),
		1,    // one granule
		0, 7, // segment 0, key 7
		1,      // one version
		10, 11, // ts, commitTS
		0xff, 0xff, 0xff, 0xff, 0x0f, // forged 2^36-ish value length
	)))

	f.Fuzz(func(t *testing.T, p []byte) {
		s, high, err := ReadCheckpoint(bytes.NewReader(p))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		h2, err := s.WriteCheckpoint(&buf)
		if err != nil {
			t.Fatalf("re-encoding a decoded checkpoint: %v", err)
		}
		if h2 != high {
			t.Fatalf("re-encode high = %d, decode said %d", h2, high)
		}
		s2, h3, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("re-encoded checkpoint unreadable: %v", err)
		}
		if h3 != high || s2.TotalVersions() != s.TotalVersions() {
			t.Fatalf("round-trip drift: high %d->%d, versions %d->%d",
				high, h3, s.TotalVersions(), s2.TotalVersions())
		}
	})
}

// checkpointBytes serializes a store populated by fill.
func checkpointBytes(f *testing.F, fill func(*Store)) []byte {
	f.Helper()
	s := New()
	fill(s)
	var buf bytes.Buffer
	if _, err := s.WriteCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// withValidCRC appends the correct Castagnoli trailer, so the payload
// itself — not the checksum gate — is what the decoder must survive.
func withValidCRC(payload []byte) []byte {
	return binary.LittleEndian.AppendUint32(payload,
		crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
}

// The boot-refusal errors must tell the operator what is wrong with which
// bytes: magic failures name offset 0 and both magics; checksum failures
// name the trailer offset and both sums.
func TestCheckpointErrorDetail(t *testing.T) {
	_, _, err := ReadCheckpoint(strings.NewReader("NOTACKPT1234"))
	if err == nil || !strings.Contains(err.Error(), "bad checkpoint magic") ||
		!strings.Contains(err.Error(), "offset 0") ||
		!strings.Contains(err.Error(), checkpointMagic) {
		t.Fatalf("magic error lacks detail: %v", err)
	}

	s := New()
	_ = s.InstallPending(g(0, 1), 10, []byte("x"))
	s.Commit(g(0, 1), 10)
	var buf bytes.Buffer
	if _, err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()
	bad[len(checkpointMagic)+2] ^= 0xff // corrupt the payload, keep the magic
	_, _, err = ReadCheckpoint(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") ||
		!strings.Contains(err.Error(), "offset") {
		t.Fatalf("checksum error lacks detail: %v", err)
	}

	// A forged value length is refused before it allocates.
	forged := withValidCRC(append([]byte(checkpointMagic),
		1, 0, 7, 1, 10, 11, 0xff, 0xff, 0xff, 0xff, 0x0f))
	if _, _, err := ReadCheckpoint(bytes.NewReader(forged)); err == nil ||
		!strings.Contains(err.Error(), "value length") {
		t.Fatalf("forged length error: %v", err)
	}
}
