package mvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// Checkpointing (§7.3 "maintaining multiple versions of the database").
//
// A checkpoint captures every *committed* version; pending versions belong
// to in-flight transactions and are discarded on recovery, which is
// exactly the semantics the engines need — an uncommitted transaction that
// did not survive the checkpoint simply never happened. Read-timestamp
// registers are transient synchronization state and are not captured: a
// recovered store starts a fresh timestamp epoch above the checkpoint's
// high-water mark.
//
// The format is a length-prefixed binary stream with a trailing CRC:
//
//	magic "HDDCKPT1"
//	uvarint granuleCount
//	per granule: segment, key, uvarint versionCount,
//	             per version: ts, commitTS, uvarint len, bytes
//	crc32 (Castagnoli) of everything above
const checkpointMagic = "HDDCKPT1"

// WriteCheckpoint serializes all committed versions to w. It returns the
// highest write timestamp captured; callers restart their logical clocks
// above it.
func (s *Store) WriteCheckpoint(w io.Writer) (vclock.Time, error) {
	// Collect a stable snapshot of granule ids first (the chain directory
	// is lock-free to traverse), then serialize each chain from its
	// RCU-published committed snapshot — immutable, so no chain lock and
	// no value copies are needed. Engines quiesce writers before
	// checkpointing, so the snapshots are also mutually consistent.
	type entry struct {
		g schema.GranuleID
		c *chain
	}
	var entries []entry
	s.chains.Range(func(k, v any) bool {
		entries = append(entries, entry{k.(schema.GranuleID), v.(*chain)})
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].g, entries[j].g
		if a.Segment != b.Segment {
			return a.Segment < b.Segment
		}
		return a.Key < b.Key
	})

	crc := crc32.New(crc32.MakeTable(crc32.Castagnoli))
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var high vclock.Time

	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return 0, err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if err := writeUvarint(uint64(len(entries))); err != nil {
		return 0, err
	}
	for _, e := range entries {
		if err := writeUvarint(uint64(e.g.Segment)); err != nil {
			return 0, err
		}
		if err := writeUvarint(e.g.Key); err != nil {
			return 0, err
		}
		var committed []committedVersion
		if snap := e.c.committed.Load(); snap != nil {
			committed = snap.vers
		}
		for _, v := range committed {
			if v.ts > high {
				high = v.ts
			}
			if v.commitTS > high {
				high = v.commitTS
			}
		}
		if err := writeUvarint(uint64(len(committed))); err != nil {
			return 0, err
		}
		for _, v := range committed {
			if err := writeUvarint(uint64(v.ts)); err != nil {
				return 0, err
			}
			if err := writeUvarint(uint64(v.commitTS)); err != nil {
				return 0, err
			}
			if err := writeUvarint(uint64(len(v.value))); err != nil {
				return 0, err
			}
			if _, err := bw.Write(v.value); err != nil {
				return 0, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return 0, err
	}
	return high, nil
}

// ReadCheckpoint deserializes a checkpoint into an empty Store, returning
// the store and the highest timestamp it contains. It verifies the magic
// and the trailing checksum and fails on any corruption. The whole
// checkpoint is buffered for verification first — the store it describes
// is in-memory anyway.
func ReadCheckpoint(r io.Reader) (*Store, vclock.Time, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("mvstore: reading checkpoint: %w", err)
	}
	// Check the magic before the checksum: "this is not a checkpoint at
	// all" (wrong file, zero-filled page) and "this checkpoint is corrupt"
	// are different operator problems and deserve different errors.
	if len(data) < len(checkpointMagic) || string(data[:len(checkpointMagic)]) != checkpointMagic {
		got := data
		if len(got) > len(checkpointMagic) {
			got = got[:len(checkpointMagic)]
		}
		return nil, 0, fmt.Errorf("mvstore: bad checkpoint magic %q at offset 0 (want %q; %d-byte file)",
			got, checkpointMagic, len(data))
	}
	if len(data) < len(checkpointMagic)+4 {
		return nil, 0, fmt.Errorf("mvstore: checkpoint truncated before checksum trailer (%d bytes, need at least %d)",
			len(data), len(checkpointMagic)+4)
	}
	payload, sum := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(sum)
	if got := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)); got != want {
		return nil, 0, fmt.Errorf("mvstore: checkpoint checksum mismatch: computed %08x over bytes [0,%d), trailer at offset %d says %08x",
			got, len(payload), len(payload), want)
	}
	br := bytes.NewReader(payload[len(checkpointMagic):])
	s := New()
	var high vclock.Time
	granules, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("mvstore: checkpoint truncated: %w", err)
	}
	for i := uint64(0); i < granules; i++ {
		seg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("mvstore: checkpoint truncated: %w", err)
		}
		key, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("mvstore: checkpoint truncated: %w", err)
		}
		g := schema.GranuleID{Segment: schema.SegmentID(seg), Key: key}
		nvers, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("mvstore: checkpoint truncated: %w", err)
		}
		c := s.chainOf(g, true)
		var prev vclock.Time
		for v := uint64(0); v < nvers; v++ {
			ts, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, 0, fmt.Errorf("mvstore: checkpoint truncated: %w", err)
			}
			commitTS, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, 0, fmt.Errorf("mvstore: checkpoint truncated: %w", err)
			}
			vlen, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, 0, fmt.Errorf("mvstore: checkpoint truncated: %w", err)
			}
			// Bound the allocation by what is actually left: a forged
			// length must fail before make, not after.
			if vlen > uint64(br.Len()) {
				return nil, 0, fmt.Errorf("mvstore: checkpoint value length %d exceeds the %d bytes remaining", vlen, br.Len())
			}
			val := make([]byte, vlen)
			if _, err := io.ReadFull(br, val); err != nil {
				return nil, 0, fmt.Errorf("mvstore: checkpoint truncated: %w", err)
			}
			if vclock.Time(ts) <= prev && v > 0 {
				return nil, 0, fmt.Errorf("mvstore: checkpoint chain for %v out of order", g)
			}
			prev = vclock.Time(ts)
			c.versions = append(c.versions, version{
				ts: vclock.Time(ts), commitTS: vclock.Time(commitTS),
				value: val, state: Committed,
			})
			if vclock.Time(ts) > high {
				high = vclock.Time(ts)
			}
			if vclock.Time(commitTS) > high {
				high = vclock.Time(commitTS)
			}
		}
		// Publish the rebuilt chain's committed snapshot. Recovery is
		// single-threaded (the store is not yet shared), so no lock is
		// needed around the rebuild.
		c.publishCommitted()
	}
	if br.Len() != 0 {
		return nil, 0, fmt.Errorf("mvstore: %d trailing bytes in checkpoint", br.Len())
	}
	return s, high, nil
}
