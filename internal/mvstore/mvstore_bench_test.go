package mvstore

import (
	"fmt"
	"testing"

	"hdd/internal/schema"
	"hdd/internal/vclock"
)

func benchStore(chainLen int) (*Store, schema.GranuleID, vclock.Time) {
	s := New()
	g := schema.GranuleID{Segment: 0, Key: 1}
	var last vclock.Time
	for i := 1; i <= chainLen; i++ {
		ts := vclock.Time(i * 2)
		_ = s.InstallPending(g, ts, []byte{byte(i)})
		s.Commit(g, ts)
		last = ts
	}
	return s, g, last
}

func BenchmarkReadCommittedBefore(b *testing.B) {
	for _, n := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			s, g, last := benchStore(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, ok := s.ReadCommittedBefore(g, last+1); !ok {
					b.Fatal("miss")
				}
			}
		})
	}
}

func BenchmarkReadRegistered(b *testing.B) {
	s, g, last := benchStore(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, ok, wait := s.ReadRegistered(g, last+1, last+1)
		if !ok || wait != nil {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkInstallCheckedCommit(b *testing.B) {
	s := New()
	g := schema.GranuleID{Segment: 0, Key: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := vclock.Time(i + 1)
		if err := s.InstallChecked(g, ts, []byte{1}); err != nil {
			b.Fatal(err)
		}
		s.Commit(g, ts)
	}
}

func BenchmarkGC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, _, last := benchStore(512)
		b.StartTimer()
		s.GC(last)
	}
}
