package mvstore

import (
	"sync"
	"sync/atomic"
	"testing"

	"hdd/internal/vclock"
)

// TestConcurrentReadersNeverTornOrMutated hammers one hot chain with
// committing writers, pruning GC, and lock-free readers, and asserts the
// RCU read path's two guarantees (run under -race):
//
//   - no torn reads: every returned value is internally consistent with
//     the version timestamp it was returned alongside;
//   - no later mutation: a slice returned to a reader never changes
//     afterwards, no matter how many commits, own-write overwrites, and
//     GC passes race it.
func TestConcurrentReadersNeverTornOrMutated(t *testing.T) {
	const (
		valueLen = 32
		readers  = 4
		duration = 3000 // writer commits
	)
	s := New()
	gid := g(0, 1)

	// high is the largest committed timestamp, published after commit so
	// readers pick bounds that see it.
	var high atomic.Int64
	mkValue := func(ts vclock.Time) []byte {
		v := make([]byte, valueLen)
		for i := range v {
			v[i] = byte(ts)
		}
		return v
	}
	// Seed so every read finds something.
	if err := s.InstallPending(gid, 1, mkValue(1)); err != nil {
		t.Fatal(err)
	}
	s.Commit(gid, 1)
	high.Store(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: install + overwrite + commit at increasing timestamps; the
	// overwrite exercises UpdatePending's swap-not-mutate obligation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for ts := vclock.Time(2); ts < 2+duration; ts++ {
			if err := s.InstallPending(gid, ts, mkValue(100)); err != nil {
				t.Error(err)
				return
			}
			s.UpdatePending(gid, ts, mkValue(ts))
			s.Commit(gid, ts)
			high.Store(int64(ts))
		}
	}()

	// GC: prune behind the committed frontier. The watermark trails the
	// writer, mimicking the engine's min-active rule so no reader's bound
	// can reach below it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if w := high.Load() - 64; w > 0 {
				s.GC(vclock.Time(w))
			}
		}
	}()

	// Readers: lock-free reads at the committed frontier; every byte of
	// the returned slice must match the version timestamp. Each reader
	// keeps its first slice and re-verifies it at the end — publication
	// and pruning must never have touched it.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var heldVal []byte
			var heldTS vclock.Time
			check := func(val []byte, ts vclock.Time) bool {
				if len(val) != valueLen {
					t.Errorf("read at ts %d returned %d bytes, want %d", ts, len(val), valueLen)
					return false
				}
				for i, b := range val {
					if b != byte(ts) {
						t.Errorf("torn read: byte %d of version %d is %d, want %d", i, ts, b, byte(ts))
						return false
					}
				}
				return true
			}
			for {
				select {
				case <-stop:
					if heldVal != nil && !check(heldVal, heldTS) {
						t.Errorf("held slice from version %d was mutated after return", heldTS)
					}
					return
				default:
				}
				bound := vclock.Time(high.Load()) + 1
				val, ts, ok := s.ReadCommittedBefore(gid, bound)
				if !ok {
					t.Errorf("no committed version below %d", bound)
					return
				}
				if !check(val, ts) {
					return
				}
				if heldVal == nil {
					heldVal, heldTS = val, ts
				}
			}
		}()
	}
	wg.Wait()
}
