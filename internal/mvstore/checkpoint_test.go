package mvstore

import (
	"bytes"
	"strings"
	"testing"

	"hdd/internal/vclock"
)

func TestCheckpointRoundTrip(t *testing.T) {
	s := New()
	// Three granules across segments, multi-version chains, one pending.
	for seg := 0; seg < 2; seg++ {
		for key := 0; key < 3; key++ {
			gid := g(seg, key)
			for i := 1; i <= 3; i++ {
				ts := vclock.Time(seg*100 + key*10 + i)
				_ = s.InstallPending(gid, ts, []byte{byte(seg), byte(key), byte(i)})
				s.CommitAt(gid, ts, ts+1)
			}
		}
	}
	_ = s.InstallPending(g(0, 0), 999, []byte("pending-must-vanish"))

	var buf bytes.Buffer
	high, err := s.WriteCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if high < 123 {
		t.Fatalf("high = %d", high)
	}

	r, rhigh, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rhigh != high {
		t.Fatalf("rhigh = %d, want %d", rhigh, high)
	}
	for seg := 0; seg < 2; seg++ {
		for key := 0; key < 3; key++ {
			gid := g(seg, key)
			want := s.Versions(gid)
			got := r.Versions(gid)
			// The source still has the pending version on (0,0).
			var wantCommitted []VersionInfo
			for _, v := range want {
				if v.State == Committed {
					v.ReadTS = 0 // registers are not captured
					wantCommitted = append(wantCommitted, v)
				}
			}
			if len(got) != len(wantCommitted) {
				t.Fatalf("granule %v: %d versions, want %d", gid, len(got), len(wantCommitted))
			}
			for i := range got {
				if got[i].TS != wantCommitted[i].TS || got[i].Len != wantCommitted[i].Len {
					t.Fatalf("granule %v version %d mismatch: %+v vs %+v", gid, i, got[i], wantCommitted[i])
				}
			}
			v1, ts1, ok1 := s.ReadCommittedBefore(gid, vclock.Infinity)
			v2, ts2, ok2 := r.ReadCommittedBefore(gid, vclock.Infinity)
			if ok1 != ok2 || ts1 != ts2 || !bytes.Equal(v1, v2) {
				t.Fatalf("granule %v latest mismatch", gid)
			}
		}
	}
	// The pending version did not survive.
	if v, _, ok := r.ReadCommittedBefore(g(0, 0), vclock.Infinity); ok && string(v) == "pending-must-vanish" {
		t.Fatal("pending version resurrected")
	}
}

func TestCheckpointEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New().WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, high, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if high != 0 || r.TotalVersions() != 0 {
		t.Fatalf("high=%d versions=%d", high, r.TotalVersions())
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	s := New()
	_ = s.InstallPending(g(0, 1), 10, []byte("x"))
	s.Commit(g(0, 1), 10)
	var buf bytes.Buffer
	if _, err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a payload byte.
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xFF
	if _, _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
		t.Fatal("corruption not detected")
	}
	// Truncate.
	if _, _, err := ReadCheckpoint(bytes.NewReader(good[:len(good)-6])); err == nil {
		t.Fatal("truncation not detected")
	}
	// Garbage magic (fix the checksum so magic is what fails... easier:
	// whole-garbage input fails either way).
	if _, _, err := ReadCheckpoint(strings.NewReader("NOTACKPTxxxxxxxxxxxx")); err == nil {
		t.Fatal("bad magic not detected")
	}
	// Empty input.
	if _, _, err := ReadCheckpoint(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCheckpointLargeValues(t *testing.T) {
	s := New()
	big := bytes.Repeat([]byte{7}, 1<<16)
	_ = s.InstallPending(g(0, 1), 5, big)
	s.Commit(g(0, 1), 5)
	var buf bytes.Buffer
	if _, err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, _, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, _, ok := r.ReadCommittedBefore(g(0, 1), vclock.Infinity)
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("large value mangled")
	}
}
