// Package mvstore is the multi-version storage substrate shared by the
// multi-version concurrency-control engines (HDD Protocols A/B/C, MVTO,
// MV2PL snapshots).
//
// Each granule keeps a chain of versions ordered by write timestamp — in
// this reproduction, the initiation time of the creating transaction, per
// the paper's §4 notation TS(d^v) = I(writer). Versions are installed
// pending, then committed or discarded; committed versions optionally carry
// a read-timestamp register (the thing Protocols A and C avoid touching).
// Watermark-based garbage collection implements the §7.3 maintenance duty.
package mvstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// State is a version's lifecycle state.
type State uint8

const (
	// Pending versions are installed by an active transaction; invisible
	// to committed-read paths.
	Pending State = iota
	// Committed versions are visible.
	Committed
)

// Version is one entry in a granule's chain.
type version struct {
	ts    vclock.Time // write timestamp = writer's initiation time
	value []byte
	state State
	// commitTS is the instant the version committed (set by CommitAt;
	// zero when committed via Commit). Commit-time visibility is what the
	// MV2PL baseline snapshots by; the HDD protocols never consult it.
	commitTS vclock.Time
	// readTS is the largest read timestamp registered against this
	// version (Protocol B / MVTO bookkeeping). Zero if never registered.
	readTS vclock.Time
	// done is closed when the version leaves Pending (commit or abort);
	// nil once resolved.
	done chan struct{}
}

// VersionInfo is an exported snapshot of one version, for diagnostics and
// tests.
type VersionInfo struct {
	TS     vclock.Time
	State  State
	ReadTS vclock.Time
	Len    int
}

const numShards = 64

type shard struct {
	mu     sync.Mutex
	chains map[schema.GranuleID]*chain
}

type chain struct {
	mu sync.Mutex
	// versions is ordered by ts ascending. Aborted versions are removed.
	versions []version
	// initRTS is the largest read timestamp registered against the
	// *initial* (absent) version of the granule. A registered read that
	// found nothing must still block an older writer from creating the
	// first version afterwards, or a same-class reader/writer pair can
	// cycle.
	initRTS vclock.Time
}

// Store is a sharded multi-version key/value store. It is safe for
// concurrent use.
type Store struct {
	shards [numShards]shard

	// persist is the durability hook (persister.go); nil means memory-only.
	// Set once via SetPersister before the store is shared.
	persist Persister

	// Stats, maintained atomically.
	versionsInstalled atomic.Int64
	versionsAborted   atomic.Int64
	versionsPruned    atomic.Int64
	readRegistrations atomic.Int64
}

// New returns an empty Store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].chains = make(map[schema.GranuleID]*chain)
	}
	return s
}

func (s *Store) shardOf(g schema.GranuleID) *shard {
	h := uint64(g.Segment)*0x9e3779b97f4a7c15 ^ g.Key*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return &s.shards[h%numShards]
}

func (s *Store) chainOf(g schema.GranuleID, create bool) *chain {
	sh := s.shardOf(g)
	sh.mu.Lock()
	c := sh.chains[g]
	if c == nil && create {
		c = &chain{}
		sh.chains[g] = c
	}
	sh.mu.Unlock()
	return c
}

// locate returns the index of the latest version with ts < bound, or -1.
func (c *chain) locate(bound vclock.Time) int {
	return vclock.Locate(len(c.versions), func(i int) vclock.Time { return c.versions[i].ts }, bound)
}

// ErrVersionExists is returned when installing a version whose timestamp is
// already present in the chain (one write per granule per transaction is
// the unit of versioning; engines buffer intra-transaction overwrites).
var ErrVersionExists = fmt.Errorf("mvstore: version with this timestamp already exists")

// InstallPending adds a pending version of g with write timestamp ts.
func (s *Store) InstallPending(g schema.GranuleID, ts vclock.Time, value []byte) error {
	c := s.chainOf(g, true)
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i >= 0 && c.versions[i].ts == ts {
		return ErrVersionExists
	}
	v := version{ts: ts, value: append([]byte(nil), value...), state: Pending, done: make(chan struct{})}
	c.versions = append(c.versions, version{})
	copy(c.versions[i+2:], c.versions[i+1:])
	c.versions[i+1] = v
	s.versionsInstalled.Add(1)
	if s.persist != nil {
		s.persist.PersistInstall(g, ts, value)
	}
	return nil
}

// Commit flips the pending version of g at ts to Committed.
func (s *Store) Commit(g schema.GranuleID, ts vclock.Time) {
	c := s.chainOf(g, false)
	if c == nil {
		panic(fmt.Sprintf("mvstore: commit of unknown granule %v", g))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i < 0 || c.versions[i].ts != ts || c.versions[i].state != Pending {
		panic(fmt.Sprintf("mvstore: commit of missing pending version %v@%d", g, ts))
	}
	c.versions[i].state = Committed
	close(c.versions[i].done)
	c.versions[i].done = nil
}

// CommitAt flips the pending version of g at ts to Committed, stamping it
// with the given commit instant. Engines whose readers snapshot by commit
// time (MV2PL) use this in place of Commit.
func (s *Store) CommitAt(g schema.GranuleID, ts, commitTS vclock.Time) {
	c := s.chainOf(g, false)
	if c == nil {
		panic(fmt.Sprintf("mvstore: commit of unknown granule %v", g))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i < 0 || c.versions[i].ts != ts || c.versions[i].state != Pending {
		panic(fmt.Sprintf("mvstore: commit of missing pending version %v@%d", g, ts))
	}
	c.versions[i].state = Committed
	c.versions[i].commitTS = commitTS
	close(c.versions[i].done)
	c.versions[i].done = nil
}

// ReadCommittedAsOf returns the latest version of g committed strictly
// before the given commit instant — the MV2PL read-only snapshot rule. It
// requires versions to have been committed with CommitAt and relies on
// per-granule commit order matching chain order, which strict 2PL
// guarantees (exclusive locks serialize writers of a granule).
func (s *Store) ReadCommittedAsOf(g schema.GranuleID, commitBound vclock.Time) (value []byte, ts vclock.Time, ok bool) {
	c := s.chainOf(g, false)
	if c == nil {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.versions) - 1; i >= 0; i-- {
		v := &c.versions[i]
		if v.state == Committed && v.commitTS < commitBound {
			return append([]byte(nil), v.value...), v.ts, true
		}
	}
	return nil, 0, false
}

// Abort removes the pending version of g at ts.
func (s *Store) Abort(g schema.GranuleID, ts vclock.Time) {
	c := s.chainOf(g, false)
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i < 0 || c.versions[i].ts != ts || c.versions[i].state != Pending {
		return
	}
	close(c.versions[i].done)
	c.versions = append(c.versions[:i], c.versions[i+1:]...)
	s.versionsAborted.Add(1)
	if s.persist != nil {
		s.persist.PersistAbort(g, ts)
	}
}

// ReadCommittedBefore returns the value and timestamp of the latest
// committed version of g with ts < bound. It never blocks and never
// registers the read — this is the access path of Protocols A and C, whose
// whole point (§4.2, §5.2) is that it mutates nothing.
//
// ok is false if no committed version precedes bound (the granule is
// unwritten as of the bound — engines surface this as "not found").
func (s *Store) ReadCommittedBefore(g schema.GranuleID, bound vclock.Time) (value []byte, ts vclock.Time, ok bool) {
	c := s.chainOf(g, false)
	if c == nil {
		return nil, 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := c.locate(bound); i >= 0; i-- {
		if c.versions[i].state == Committed {
			return append([]byte(nil), c.versions[i].value...), c.versions[i].ts, true
		}
	}
	return nil, 0, false
}

// ReadRegistered performs an MVTO read (Protocol B): it returns the latest
// version of g with ts < bound, waiting for that version to resolve if it
// is still pending (wait-for-commit MVTO avoids cascading aborts), and
// registers the reader's timestamp against the version it returns.
//
// The returned wait channel is nil when the read completed immediately;
// otherwise the caller must wait until the channel is closed (the pending
// version resolved) and then retry. Exposing the channel rather than a
// blocking call makes the wait *cancellable*: callers can select against a
// deadline timer or an engine-shutdown channel and give up instead of
// blocking forever on an abandoned writer. ts reports the pending version's
// write timestamp so callers with non-age-ordered bounds (basic TO's
// "latest version" reads) can reject a read-too-late instead of waiting —
// waiting on a *younger* pending writer can deadlock, since that writer's
// own reads may be waiting the other way. This two-phase shape also lets
// engines count blocked reads — a quantity the experiments report —
// without holding chain locks across waits.
func (s *Store) ReadRegistered(g schema.GranuleID, bound, readerTS vclock.Time) (value []byte, ts vclock.Time, ok bool, wait <-chan struct{}) {
	c := s.chainOf(g, true)
	c.mu.Lock()
	i := c.locate(bound)
	if i < 0 {
		if readerTS > c.initRTS {
			c.initRTS = readerTS
			s.readRegistrations.Add(1)
		}
		c.mu.Unlock()
		return nil, 0, false, nil
	}
	v := &c.versions[i]
	if v.state == Pending {
		done := v.done
		pendingTS := v.ts
		c.mu.Unlock()
		return nil, pendingTS, false, done
	}
	if readerTS > v.readTS {
		v.readTS = readerTS
		s.readRegistrations.Add(1)
	}
	val, vts := append([]byte(nil), v.value...), v.ts
	c.mu.Unlock()
	return val, vts, true, nil
}

// WriteCheck validates an MVTO write at writerTS against g's chain,
// per Reed'78 as adopted by Protocol B:
//
//   - if the predecessor version (latest with ts < writerTS) has a
//     registered read timestamp > writerTS, the write must be rejected —
//     some later reader already read the predecessor, and interposing this
//     version would invalidate that read;
//   - if any version (committed or pending) with ts > writerTS exists, the
//     write is also rejected ("too late"): this store keeps the exactness
//     of the §2 dependency graph rather than applying the Thomas write
//     rule.
//
// It returns nil if the write is admissible.
func (s *Store) WriteCheck(g schema.GranuleID, writerTS vclock.Time) error {
	c := s.chainOf(g, false)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(writerTS)
	if i >= 0 && c.versions[i].readTS > writerTS {
		return &RejectedError{Granule: g, WriterTS: writerTS, ReadTS: c.versions[i].readTS, Reason: "predecessor read by a later transaction"}
	}
	if i < 0 && c.initRTS > writerTS {
		return &RejectedError{Granule: g, WriterTS: writerTS, ReadTS: c.initRTS, Reason: "initial version read by a later transaction"}
	}
	if i+1 < len(c.versions) {
		return &RejectedError{Granule: g, WriterTS: writerTS, Reason: "a newer version already exists"}
	}
	return nil
}

// InstallChecked atomically performs WriteCheck and, if admissible,
// installs a pending version — the write path of Protocol B and MVTO.
// Splitting check from install would let a concurrent reader register a
// read between them; one critical section keeps the engines' conflict
// accounting exact.
func (s *Store) InstallChecked(g schema.GranuleID, writerTS vclock.Time, value []byte) error {
	c := s.chainOf(g, true)
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(writerTS)
	if i >= 0 && c.versions[i].readTS > writerTS {
		return &RejectedError{Granule: g, WriterTS: writerTS, ReadTS: c.versions[i].readTS, Reason: "predecessor read by a later transaction"}
	}
	if i < 0 && c.initRTS > writerTS {
		return &RejectedError{Granule: g, WriterTS: writerTS, ReadTS: c.initRTS, Reason: "initial version read by a later transaction"}
	}
	if i+1 < len(c.versions) {
		if c.versions[i+1].ts == writerTS {
			return ErrVersionExists
		}
		return &RejectedError{Granule: g, WriterTS: writerTS, Reason: "a newer version already exists"}
	}
	v := version{ts: writerTS, value: append([]byte(nil), value...), state: Pending, done: make(chan struct{})}
	c.versions = append(c.versions, v)
	s.versionsInstalled.Add(1)
	if s.persist != nil {
		s.persist.PersistInstall(g, writerTS, value)
	}
	return nil
}

// UpdatePending replaces the value of the pending version of g at ts —
// a transaction overwriting its own earlier write. It panics if no such
// pending version exists (engines only call it for granules they installed).
func (s *Store) UpdatePending(g schema.GranuleID, ts vclock.Time, value []byte) {
	c := s.chainOf(g, false)
	if c == nil {
		panic(fmt.Sprintf("mvstore: update of unknown granule %v", g))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i < 0 || c.versions[i].ts != ts || c.versions[i].state != Pending {
		panic(fmt.Sprintf("mvstore: update of missing pending version %v@%d", g, ts))
	}
	c.versions[i].value = append([]byte(nil), value...)
	if s.persist != nil {
		s.persist.PersistInstall(g, ts, value)
	}
}

// RejectedError reports an MVTO write rejection.
type RejectedError struct {
	Granule  schema.GranuleID
	WriterTS vclock.Time
	ReadTS   vclock.Time
	Reason   string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("mvstore: write of %v at %d rejected: %s", e.Granule, e.WriterTS, e.Reason)
}

// GC prunes every chain against the watermark: all versions with
// ts < watermark are dropped except the latest committed one, which remains
// readable for bounds at or below the watermark. It returns the number of
// versions pruned. Callers must choose watermarks no later than any bound a
// future read may use (the HDD engine uses the minimum of all active
// initiation times and the released time wall).
func (s *Store) GC(watermark vclock.Time) int {
	pruned := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		chains := make([]*chain, 0, len(sh.chains))
		for _, c := range sh.chains {
			chains = append(chains, c)
		}
		sh.mu.Unlock()
		for _, c := range chains {
			c.mu.Lock()
			// Find the latest committed version below the watermark; keep
			// it, drop all earlier versions.
			keep := -1
			for i := c.locate(watermark); i >= 0; i-- {
				if c.versions[i].state == Committed {
					keep = i
					break
				}
			}
			if keep > 0 {
				// Pending versions below keep cannot exist with a correct
				// watermark (their writers would still be active); guard
				// anyway by only dropping committed prefix entries.
				cut := 0
				for cut < keep && c.versions[cut].state == Committed {
					cut++
				}
				if cut > 0 {
					c.versions = append([]version(nil), c.versions[cut:]...)
					pruned += cut
				}
			}
			c.mu.Unlock()
		}
	}
	s.versionsPruned.Add(int64(pruned))
	if s.persist != nil && pruned > 0 {
		s.persist.PersistPrune(watermark)
	}
	return pruned
}

// Versions returns a snapshot of g's chain for tests and diagnostics.
func (s *Store) Versions(g schema.GranuleID) []VersionInfo {
	c := s.chainOf(g, false)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VersionInfo, len(c.versions))
	for i, v := range c.versions {
		out[i] = VersionInfo{TS: v.ts, State: v.state, ReadTS: v.readTS, Len: len(v.value)}
	}
	return out
}

// Stats reports cumulative store counters.
type Stats struct {
	VersionsInstalled int64
	VersionsAborted   int64
	VersionsPruned    int64
	ReadRegistrations int64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		VersionsInstalled: s.versionsInstalled.Load(),
		VersionsAborted:   s.versionsAborted.Load(),
		VersionsPruned:    s.versionsPruned.Load(),
		ReadRegistrations: s.readRegistrations.Load(),
	}
}

// TotalVersions counts retained versions across all granules (O(n); for
// tests and the GC ablation experiment).
func (s *Store) TotalVersions() int {
	total := 0
	for si := range s.shards {
		sh := &s.shards[si]
		sh.mu.Lock()
		for _, c := range sh.chains {
			c.mu.Lock()
			total += len(c.versions)
			c.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return total
}
