// Package mvstore is the multi-version storage substrate shared by the
// multi-version concurrency-control engines (HDD Protocols A/B/C, MVTO,
// MV2PL snapshots).
//
// Each granule keeps a chain of versions ordered by write timestamp — in
// this reproduction, the initiation time of the creating transaction, per
// the paper's §4 notation TS(d^v) = I(writer). Versions are installed
// pending, then committed or discarded; committed versions optionally carry
// a read-timestamp register (the thing Protocols A and C avoid touching).
// Watermark-based garbage collection implements the §7.3 maintenance duty.
//
// # Read-path memory model (DESIGN.md §14)
//
// The committed-read entry points (ReadCommittedBefore, ReadCommittedAsOf)
// are wait-free: they take no locks and perform no allocations. Each chain
// publishes its committed subsequence as an immutable snapshot behind an
// atomic pointer (RCU); writers rebuild and swap the snapshot under the
// chain mutex on commit and prune, readers load the pointer and
// binary-search. A published snapshot — including every value slice it
// references — is never mutated afterwards, so a reader that loaded it
// stays consistent no matter what commits or GC passes race it; the Go
// runtime reclaims superseded snapshots once the last reader drops its
// reference, which is why no epoch or hazard-pointer machinery is needed.
//
// Immutable-value contract: values returned by every read path alias
// store-owned immutable memory. Callers must not modify them; engines make
// the single defensive copy at their public cc.Txn.Read boundary (zero-copy
// consumers like the wire server use the shared slice directly).
package mvstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// State is a version's lifecycle state.
type State uint8

const (
	// Pending versions are installed by an active transaction; invisible
	// to committed-read paths.
	Pending State = iota
	// Committed versions are visible.
	Committed
)

// Version is one entry in a granule's chain.
type version struct {
	ts    vclock.Time // write timestamp = writer's initiation time
	value []byte
	state State
	// commitTS is the instant the version committed (set by CommitAt;
	// zero when committed via Commit). Commit-time visibility is what the
	// MV2PL baseline snapshots by; the HDD protocols never consult it.
	commitTS vclock.Time
	// readTS is the largest read timestamp registered against this
	// version (Protocol B / MVTO bookkeeping). Zero if never registered.
	readTS vclock.Time
	// done is closed when the version leaves Pending (commit or abort);
	// nil once resolved.
	done chan struct{}
}

// VersionInfo is an exported snapshot of one version, for diagnostics and
// tests.
type VersionInfo struct {
	TS     vclock.Time
	State  State
	ReadTS vclock.Time
	Len    int
}

// committedVersion is one entry of an RCU-published committed snapshot.
// Both the struct and the value bytes are immutable once published.
type committedVersion struct {
	ts       vclock.Time
	commitTS vclock.Time
	value    []byte
}

// committedSnap is the RCU-published view of one chain's committed
// subsequence, ts ascending. It is immutable: mutators build a fresh
// snapshot and swap the chain's pointer; readers that loaded the old one
// keep a consistent view until they drop it.
type committedSnap struct {
	vers []committedVersion
}

// locate returns the index of the latest committed version with ts <
// bound, or -1.
func (s *committedSnap) locate(bound vclock.Time) int {
	return vclock.Locate(len(s.vers), func(i int) vclock.Time { return s.vers[i].ts }, bound)
}

type chain struct {
	// mu serializes mutators (install/commit/abort/update/prune) and the
	// registered Protocol B read path. The wait-free committed-read paths
	// never take it.
	mu sync.Mutex
	// versions is ordered by ts ascending. Aborted versions are removed.
	versions []version
	// initRTS is the largest read timestamp registered against the
	// *initial* (absent) version of the granule. A registered read that
	// found nothing must still block an older writer from creating the
	// first version afterwards, or a same-class reader/writer pair can
	// cycle.
	initRTS vclock.Time
	// committed is the RCU snapshot of the committed subsequence of
	// versions. Rebuilt (publishCommitted) under mu by every mutation
	// that changes the committed set: commit and prune. Nil means no
	// committed versions yet.
	committed atomic.Pointer[committedSnap]
}

// publishCommitted rebuilds and swaps the chain's committed snapshot.
// Callers must hold c.mu (or have exclusive access during recovery). The
// version flip it publishes becomes visible to wait-free readers at the
// atomic store.
func (c *chain) publishCommitted() {
	n := 0
	for i := range c.versions {
		if c.versions[i].state == Committed {
			n++
		}
	}
	vers := make([]committedVersion, 0, n)
	for i := range c.versions {
		v := &c.versions[i]
		if v.state == Committed {
			vers = append(vers, committedVersion{ts: v.ts, commitTS: v.commitTS, value: v.value})
		}
	}
	c.committed.Store(&committedSnap{vers: vers})
}

// Store is a sharded multi-version key/value store. It is safe for
// concurrent use.
type Store struct {
	// chains maps schema.GranuleID -> *chain. A sync.Map so the wait-free
	// read paths resolve granule → chain without a directory lock (chains
	// are created once and never removed — the read-mostly shape sync.Map
	// is built for).
	chains sync.Map

	// persist is the durability hook (persister.go); nil means memory-only.
	// Set once via SetPersister before the store is shared.
	persist Persister

	// Stats, maintained atomically.
	versionsInstalled atomic.Int64
	versionsAborted   atomic.Int64
	versionsPruned    atomic.Int64
	readRegistrations atomic.Int64
}

// New returns an empty Store.
func New() *Store {
	return &Store{}
}

func (s *Store) chainOf(g schema.GranuleID, create bool) *chain {
	if v, ok := s.chains.Load(g); ok {
		return v.(*chain)
	}
	if !create {
		return nil
	}
	v, _ := s.chains.LoadOrStore(g, &chain{})
	return v.(*chain)
}

// locate returns the index of the latest version with ts < bound, or -1.
func (c *chain) locate(bound vclock.Time) int {
	return vclock.Locate(len(c.versions), func(i int) vclock.Time { return c.versions[i].ts }, bound)
}

// ErrVersionExists is returned when installing a version whose timestamp is
// already present in the chain (one write per granule per transaction is
// the unit of versioning; engines buffer intra-transaction overwrites).
var ErrVersionExists = fmt.Errorf("mvstore: version with this timestamp already exists")

// InstallPending adds a pending version of g with write timestamp ts.
func (s *Store) InstallPending(g schema.GranuleID, ts vclock.Time, value []byte) error {
	c := s.chainOf(g, true)
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i >= 0 && c.versions[i].ts == ts {
		return ErrVersionExists
	}
	v := version{ts: ts, value: append([]byte(nil), value...), state: Pending, done: make(chan struct{})}
	c.versions = append(c.versions, version{})
	copy(c.versions[i+2:], c.versions[i+1:])
	c.versions[i+1] = v
	s.versionsInstalled.Add(1)
	if s.persist != nil {
		s.persist.PersistInstall(g, ts, value)
	}
	return nil
}

// commitAt flips the pending version of g at ts to Committed with the
// given commit instant (zero when commit time is untracked) and publishes
// the updated committed snapshot — the shared body of Commit and CommitAt.
func (s *Store) commitAt(g schema.GranuleID, ts, commitTS vclock.Time) {
	c := s.chainOf(g, false)
	if c == nil {
		panic(fmt.Sprintf("mvstore: commit of unknown granule %v", g))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i < 0 || c.versions[i].ts != ts || c.versions[i].state != Pending {
		panic(fmt.Sprintf("mvstore: commit of missing pending version %v@%d", g, ts))
	}
	c.versions[i].state = Committed
	c.versions[i].commitTS = commitTS
	close(c.versions[i].done)
	c.versions[i].done = nil
	c.publishCommitted()
}

// Commit flips the pending version of g at ts to Committed.
func (s *Store) Commit(g schema.GranuleID, ts vclock.Time) {
	s.commitAt(g, ts, 0)
}

// CommitAt flips the pending version of g at ts to Committed, stamping it
// with the given commit instant. Engines whose readers snapshot by commit
// time (MV2PL) use this in place of Commit.
func (s *Store) CommitAt(g schema.GranuleID, ts, commitTS vclock.Time) {
	s.commitAt(g, ts, commitTS)
}

// ReadCommittedAsOf returns the latest version of g committed strictly
// before the given commit instant — the MV2PL read-only snapshot rule. It
// requires versions to have been committed with CommitAt and relies on
// per-granule commit order matching chain order, which strict 2PL
// guarantees (exclusive locks serialize writers of a granule).
//
// Wait-free: no locks, no allocations. The returned value aliases
// immutable store memory and must not be modified.
func (s *Store) ReadCommittedAsOf(g schema.GranuleID, commitBound vclock.Time) (value []byte, ts vclock.Time, ok bool) {
	c := s.chainOf(g, false)
	if c == nil {
		return nil, 0, false
	}
	snap := c.committed.Load()
	if snap == nil {
		return nil, 0, false
	}
	for i := len(snap.vers) - 1; i >= 0; i-- {
		if v := &snap.vers[i]; v.commitTS < commitBound {
			return v.value, v.ts, true
		}
	}
	return nil, 0, false
}

// Abort removes the pending version of g at ts.
func (s *Store) Abort(g schema.GranuleID, ts vclock.Time) {
	c := s.chainOf(g, false)
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i < 0 || c.versions[i].ts != ts || c.versions[i].state != Pending {
		return
	}
	close(c.versions[i].done)
	c.versions = append(c.versions[:i], c.versions[i+1:]...)
	s.versionsAborted.Add(1)
	if s.persist != nil {
		s.persist.PersistAbort(g, ts)
	}
}

// ReadCommittedBefore returns the value and timestamp of the latest
// committed version of g with ts < bound. It never blocks and never
// registers the read — this is the access path of Protocols A and C, whose
// whole point (§4.2, §5.2) is that it mutates nothing. It is wait-free all
// the way down: the chain directory lookup and the committed-snapshot load
// take no locks, and the binary search allocates nothing.
//
// The returned value aliases immutable store memory and must not be
// modified (see the package comment's read-path memory model).
//
// ok is false if no committed version precedes bound (the granule is
// unwritten as of the bound — engines surface this as "not found").
func (s *Store) ReadCommittedBefore(g schema.GranuleID, bound vclock.Time) (value []byte, ts vclock.Time, ok bool) {
	c := s.chainOf(g, false)
	if c == nil {
		return nil, 0, false
	}
	snap := c.committed.Load()
	if snap == nil {
		return nil, 0, false
	}
	i := snap.locate(bound)
	if i < 0 {
		return nil, 0, false
	}
	return snap.vers[i].value, snap.vers[i].ts, true
}

// ReadRegistered performs an MVTO read (Protocol B): it returns the latest
// version of g with ts < bound, waiting for that version to resolve if it
// is still pending (wait-for-commit MVTO avoids cascading aborts), and
// registers the reader's timestamp against the version it returns.
//
// The returned wait channel is nil when the read completed immediately;
// otherwise the caller must wait until the channel is closed (the pending
// version resolved) and then retry. Exposing the channel rather than a
// blocking call makes the wait *cancellable*: callers can select against a
// deadline timer or an engine-shutdown channel and give up instead of
// blocking forever on an abandoned writer. ts reports the pending version's
// write timestamp so callers with non-age-ordered bounds (basic TO's
// "latest version" reads) can reject a read-too-late instead of waiting —
// waiting on a *younger* pending writer can deadlock, since that writer's
// own reads may be waiting the other way. This two-phase shape also lets
// engines count blocked reads — a quantity the experiments report —
// without holding chain locks across waits.
//
// The returned value aliases immutable store memory and must not be
// modified (registration mutates the chain's read-timestamp register, but
// never a value).
func (s *Store) ReadRegistered(g schema.GranuleID, bound, readerTS vclock.Time) (value []byte, ts vclock.Time, ok bool, wait <-chan struct{}) {
	c := s.chainOf(g, true)
	c.mu.Lock()
	i := c.locate(bound)
	if i < 0 {
		if readerTS > c.initRTS {
			c.initRTS = readerTS
			s.readRegistrations.Add(1)
		}
		c.mu.Unlock()
		return nil, 0, false, nil
	}
	v := &c.versions[i]
	if v.state == Pending {
		done := v.done
		pendingTS := v.ts
		c.mu.Unlock()
		return nil, pendingTS, false, done
	}
	if readerTS > v.readTS {
		v.readTS = readerTS
		s.readRegistrations.Add(1)
	}
	val, vts := v.value, v.ts
	c.mu.Unlock()
	return val, vts, true, nil
}

// admitWrite validates a write at writerTS against the chain, per Reed'78
// as adopted by Protocol B — the shared admissibility logic of WriteCheck
// and InstallChecked:
//
//   - if the predecessor version (latest with ts < writerTS) has a
//     registered read timestamp > writerTS, the write must be rejected —
//     some later reader already read the predecessor, and interposing this
//     version would invalidate that read;
//   - a version already present at exactly writerTS is ErrVersionExists;
//   - if any version (committed or pending) with ts > writerTS exists, the
//     write is also rejected ("too late"): this store keeps the exactness
//     of the §2 dependency graph rather than applying the Thomas write
//     rule.
//
// It returns nil if the write is admissible, which implies writerTS orders
// after every existing version (an admissible install appends). Callers
// must hold c.mu.
func (c *chain) admitWrite(g schema.GranuleID, writerTS vclock.Time) error {
	i := c.locate(writerTS)
	if i >= 0 && c.versions[i].readTS > writerTS {
		return &RejectedError{Granule: g, WriterTS: writerTS, ReadTS: c.versions[i].readTS, Reason: "predecessor read by a later transaction"}
	}
	if i < 0 && c.initRTS > writerTS {
		return &RejectedError{Granule: g, WriterTS: writerTS, ReadTS: c.initRTS, Reason: "initial version read by a later transaction"}
	}
	if i+1 < len(c.versions) {
		if c.versions[i+1].ts == writerTS {
			return ErrVersionExists
		}
		return &RejectedError{Granule: g, WriterTS: writerTS, Reason: "a newer version already exists"}
	}
	return nil
}

// WriteCheck validates an MVTO write at writerTS against g's chain (see
// admitWrite for the rules). It returns nil if the write is admissible.
func (s *Store) WriteCheck(g schema.GranuleID, writerTS vclock.Time) error {
	c := s.chainOf(g, false)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitWrite(g, writerTS)
}

// InstallChecked atomically performs WriteCheck and, if admissible,
// installs a pending version — the write path of Protocol B and MVTO.
// Splitting check from install would let a concurrent reader register a
// read between them; one critical section keeps the engines' conflict
// accounting exact.
func (s *Store) InstallChecked(g schema.GranuleID, writerTS vclock.Time, value []byte) error {
	c := s.chainOf(g, true)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.admitWrite(g, writerTS); err != nil {
		return err
	}
	v := version{ts: writerTS, value: append([]byte(nil), value...), state: Pending, done: make(chan struct{})}
	c.versions = append(c.versions, v)
	s.versionsInstalled.Add(1)
	if s.persist != nil {
		s.persist.PersistInstall(g, writerTS, value)
	}
	return nil
}

// UpdatePending replaces the value of the pending version of g at ts —
// a transaction overwriting its own earlier write. It panics if no such
// pending version exists (engines only call it for granules they installed).
// The replacement swaps the version's value slice for a fresh copy; the
// previous bytes are never written over, preserving the immutability of
// anything a reader may already hold.
func (s *Store) UpdatePending(g schema.GranuleID, ts vclock.Time, value []byte) {
	c := s.chainOf(g, false)
	if c == nil {
		panic(fmt.Sprintf("mvstore: update of unknown granule %v", g))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.locate(ts + 1)
	if i < 0 || c.versions[i].ts != ts || c.versions[i].state != Pending {
		panic(fmt.Sprintf("mvstore: update of missing pending version %v@%d", g, ts))
	}
	c.versions[i].value = append([]byte(nil), value...)
	if s.persist != nil {
		s.persist.PersistInstall(g, ts, value)
	}
}

// RejectedError reports an MVTO write rejection.
type RejectedError struct {
	Granule  schema.GranuleID
	WriterTS vclock.Time
	ReadTS   vclock.Time
	Reason   string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("mvstore: write of %v at %d rejected: %s", e.Granule, e.WriterTS, e.Reason)
}

// GC prunes every chain against the watermark: all versions with
// ts < watermark are dropped except the latest committed one, which remains
// readable for bounds at or below the watermark. It returns the number of
// versions pruned. Callers must choose watermarks no later than any bound a
// future read may use (the HDD engine uses the minimum of all active
// initiation times and the released time wall).
//
// Reclamation only swaps snapshots: a pruned chain publishes a fresh
// committed snapshot, while any snapshot a concurrent reader already
// loaded stays intact (and correct — the watermark rule guarantees no
// future bound reaches below it) until the runtime collects it.
func (s *Store) GC(watermark vclock.Time) int {
	pruned := 0
	s.chains.Range(func(_, v any) bool {
		c := v.(*chain)
		c.mu.Lock()
		// Find the latest committed version below the watermark; keep
		// it, drop all earlier versions.
		keep := -1
		for i := c.locate(watermark); i >= 0; i-- {
			if c.versions[i].state == Committed {
				keep = i
				break
			}
		}
		if keep > 0 {
			// Pending versions below keep cannot exist with a correct
			// watermark (their writers would still be active); guard
			// anyway by only dropping committed prefix entries.
			cut := 0
			for cut < keep && c.versions[cut].state == Committed {
				cut++
			}
			if cut > 0 {
				c.versions = append([]version(nil), c.versions[cut:]...)
				c.publishCommitted()
				pruned += cut
			}
		}
		c.mu.Unlock()
		return true
	})
	s.versionsPruned.Add(int64(pruned))
	if s.persist != nil && pruned > 0 {
		s.persist.PersistPrune(watermark)
	}
	return pruned
}

// Versions returns a snapshot of g's chain for tests and diagnostics.
func (s *Store) Versions(g schema.GranuleID) []VersionInfo {
	c := s.chainOf(g, false)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]VersionInfo, len(c.versions))
	for i, v := range c.versions {
		out[i] = VersionInfo{TS: v.ts, State: v.state, ReadTS: v.readTS, Len: len(v.value)}
	}
	return out
}

// Stats reports cumulative store counters.
type Stats struct {
	VersionsInstalled int64
	VersionsAborted   int64
	VersionsPruned    int64
	ReadRegistrations int64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		VersionsInstalled: s.versionsInstalled.Load(),
		VersionsAborted:   s.versionsAborted.Load(),
		VersionsPruned:    s.versionsPruned.Load(),
		ReadRegistrations: s.readRegistrations.Load(),
	}
}

// TotalVersions counts retained versions across all granules (O(n); for
// tests and the GC ablation experiment). Like GC, it traverses the
// lock-free chain directory and takes only one chain mutex at a time —
// the single-lock-at-a-time discipline DESIGN.md §8.2 documents for all
// whole-store traversals.
func (s *Store) TotalVersions() int {
	total := 0
	s.chains.Range(func(_, v any) bool {
		c := v.(*chain)
		c.mu.Lock()
		total += len(c.versions)
		c.mu.Unlock()
		return true
	})
	return total
}
