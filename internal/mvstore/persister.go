package mvstore

import (
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// Persister is the store's durability hook: a narrow interface behind
// which a durability backend (the WAL, in internal/wal) observes every
// mutation the store applies, without the store knowing anything about
// log formats or fsync policy. The checkpoint writer (checkpoint.go) is
// the other implementation detail of durability — it serializes a
// quiesced store wholesale — while the Persister captures the
// incremental mutations between checkpoints.
//
// Hook methods other than PersistCommit are fire-and-forget: the records
// they emit are advisory until a commit marker for the writing
// transaction becomes durable, so they need neither return values nor
// waiting. PersistCommit returns a wait function the *engine* (not the
// store) blocks on before acknowledging the commit — the store never
// calls it, because the commit marker is a per-transaction fact the
// engine owns; it appears here so one interface names the complete
// durability contract.
//
// Install/abort hooks are invoked while the granule's chain lock is
// held, which orders each granule's records consistently with the
// in-memory chain. Implementations must therefore be non-blocking
// enqueues and must never call back into the Store.
type Persister interface {
	// PersistInstall records a pending-version install, or an in-place
	// update of the writer's own pending version (the last record wins on
	// replay).
	PersistInstall(g schema.GranuleID, ts vclock.Time, value []byte)
	// PersistAbort records the removal of one pending version.
	PersistAbort(g schema.GranuleID, ts vclock.Time)
	// PersistCommit records transaction ts's commit marker and returns a
	// wait that blocks until the marker is durable.
	PersistCommit(ts vclock.Time) func() error
	// PersistPrune records a GC pass at the given watermark.
	PersistPrune(watermark vclock.Time)
}

// SetPersister installs the durability hook. It must be called before
// the store is shared across goroutines (the engine sets it during
// construction/recovery, before serving transactions); a nil persister
// (the default) makes every hook a no-op.
func (s *Store) SetPersister(p Persister) {
	s.persist = p
}
