package alink

import (
	"runtime"
	"sync"

	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// WallManager periodically computes and releases time walls as §5.2
// prescribes: the system picks a starting class of one of the lowest levels
// and the current time, waits until every C_late on the way is computable,
// and then releases the wall to all read-only transactions that start
// before the next release.
//
// Rather than a dedicated goroutine, the manager is advanced opportunistically:
// the engine calls Poll after every transaction completion (the only events
// that can make a pending wall computable) and at read-only initiation. This
// keeps wall progress deterministic under test while matching the paper's
// "compute at certain intervals" behaviour through the Interval parameter.
type WallManager struct {
	links    *Links
	clock    *vclock.Clock
	interval vclock.Time
	start    schema.ClassID

	mu      sync.Mutex
	current *TimeWall
	// pendingAt is the instant m of a wall that has been scheduled but is
	// not yet computable; 0 means none pending.
	pendingAt vclock.Time
	// lastScheduled is the instant the most recent wall was scheduled at,
	// used to pace releases by interval.
	lastScheduled vclock.Time
	released      int // number of walls released, for metrics
	attempts      int // number of computability attempts, for metrics
	// floors is a multiset of instants still referenced by in-flight
	// readers (read-only transactions pinned to earlier walls, path
	// read-only transactions with pinned thresholds). SafeFloor must
	// cover them: garbage collection against only the *current* wall
	// would prune versions and history a reader holding an older wall
	// still needs.
	floors map[vclock.Time]int
}

// NewWallManager creates a manager releasing walls roughly every interval
// logical ticks, starting from the given class (normally one of the
// partition's lowest classes). An initial wall at the current instant is
// computed immediately; on a quiescent system every C_late is trivially
// computable, so Current is non-nil from construction onward.
func NewWallManager(links *Links, clock *vclock.Clock, interval vclock.Time, start schema.ClassID) *WallManager {
	if interval < 1 {
		interval = 1
	}
	m := &WallManager{links: links, clock: clock, interval: interval, start: start, floors: make(map[vclock.Time]int)}
	m.mu.Lock()
	m.scheduleLocked(links.TickBarrier(clock))
	m.tryReleaseLocked()
	m.mu.Unlock()
	return m
}

func (m *WallManager) scheduleLocked(now vclock.Time) {
	m.pendingAt = now
	m.lastScheduled = now
}

func (m *WallManager) tryReleaseLocked() bool {
	if m.pendingAt == 0 {
		return false
	}
	m.attempts++
	w, ok := m.links.ComputeWall(m.start, m.pendingAt)
	if !ok {
		return false
	}
	w.Released = m.clock.Tick()
	m.current = w
	m.pendingAt = 0
	m.released++
	return true
}

// Poll advances the manager: schedules a new wall if the release interval
// has elapsed, and attempts to release any pending wall. It returns true if
// a wall was released by this call.
func (m *WallManager) Poll() bool {
	now := m.clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pendingAt == 0 && now-m.lastScheduled >= m.interval {
		// Barrier tick: every transaction initiated below the wall's
		// instant is already registered, so the E evaluation at m is
		// stable and the release check sees every admitted transaction.
		m.scheduleLocked(m.links.TickBarrier(m.clock))
	}
	return m.tryReleaseLocked()
}

// Force schedules and releases a wall at the current instant, retrying
// until computable as transactions drain. It blocks the caller; it is meant
// for shutdown barriers and tests, not the transaction path.
func (m *WallManager) Force() *TimeWall {
	m.mu.Lock()
	m.scheduleLocked(m.links.TickBarrier(m.clock))
	for !m.tryReleaseLocked() {
		// Transactions must complete for C_late to become computable.
		// Drop the lock so they can, yield, then retry.
		m.mu.Unlock()
		runtime.Gosched()
		m.mu.Lock()
	}
	w := m.current
	m.mu.Unlock()
	return w
}

// Current returns the most recently released wall. It is never nil.
func (m *WallManager) Current() *TimeWall {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// AcquireCurrent returns the most recent wall and registers its smallest
// component as an in-flight floor until release is called. Read-only
// transactions acquire their wall this way so garbage collection never
// prunes versions or activity history their (possibly superseded) wall
// still directs them to. release is idempotent.
func (m *WallManager) AcquireCurrent() (w *TimeWall, release func()) {
	m.mu.Lock()
	w = m.current
	floor := wallFloor(w)
	m.floors[floor]++
	m.mu.Unlock()
	return w, m.releaseFunc(floor)
}

// AcquireFloor registers an arbitrary instant as an in-flight floor (path
// read-only transactions pin their activity-link thresholds this way).
// release is idempotent.
func (m *WallManager) AcquireFloor(floor vclock.Time) (release func()) {
	m.mu.Lock()
	m.floors[floor]++
	m.mu.Unlock()
	return m.releaseFunc(floor)
}

func (m *WallManager) releaseFunc(floor vclock.Time) func() {
	released := false
	return func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if released {
			return
		}
		released = true
		if m.floors[floor] <= 1 {
			delete(m.floors, floor)
		} else {
			m.floors[floor]--
		}
	}
}

func wallFloor(w *TimeWall) vclock.Time {
	floor := w.At
	for _, c := range w.Component {
		if c < floor {
			floor = c
		}
	}
	return floor
}

// SafeFloor returns the earliest instant any current or in-flight wall may
// still direct a reader to: the minimum over the released wall's
// components, any pending (scheduled but not yet computable) wall instant,
// and every floor acquired by an in-flight reader. Garbage collection and
// activity-history pruning must not advance past it.
func (m *WallManager) SafeFloor() vclock.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	floor := vclock.Infinity
	if m.pendingAt != 0 && m.pendingAt < floor {
		floor = m.pendingAt
	}
	if m.current != nil {
		if f := wallFloor(m.current); f < floor {
			floor = f
		}
	}
	for f := range m.floors {
		if f < floor {
			floor = f
		}
	}
	return floor
}

// Stats reports the number of walls released and computability attempts.
func (m *WallManager) Stats() (released, attempts int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.released, m.attempts
}
