package alink

import (
	"fmt"
	"testing"

	"hdd/internal/activity"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// benchHistory fills k class tables with n resolved transactions each.
func benchHistory(tb testing.TB, k, n int) (*Links, vclock.Time) {
	part := chainPartition(tb, k)
	act := activity.NewSet(k)
	clock := vclock.NewClock()
	for i := 0; i < n; i++ {
		for c := 0; c < k; c++ {
			init := clock.Tick()
			act.Class(c).Begin(init)
			act.Class(c).Commit(init, clock.Tick())
		}
	}
	return New(part, act), clock.Now()
}

func BenchmarkAEvalDepth(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("depth-%d", k), func(b *testing.B) {
			links, now := benchHistory(b, k, 500)
			low := schema.ClassID(links.Partition().NumClasses() - 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = links.A(low, 0, now-vclock.Time(i%100))
			}
		})
	}
}

func BenchmarkEEvalDepth8(b *testing.B) {
	links, now := benchHistory(b, 8, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := links.TryE(7, 0, now-vclock.Time(i%100)); !ok {
			b.Fatal("not computable")
		}
	}
}

func BenchmarkComputeWall(b *testing.B) {
	links, now := benchHistory(b, 6, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := links.ComputeWall(5, now-vclock.Time(i%100)); !ok {
			b.Fatal("not computable")
		}
	}
}

func BenchmarkTopoFollows(b *testing.B) {
	links, now := benchHistory(b, 4, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		links.TopoFollows(3, now-5, 0, now-9)
	}
}
