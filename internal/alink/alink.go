// Package alink implements the activity-link machinery at the heart of Hsu
// (1982): the activity link function A (§4.1), the backward activity link
// function B and the extended activity link function E (§5.1), the
// "topologically follows" relation ⇒ (§4.3), and time walls with a
// background wall manager (§5.2).
//
// All functions are parameterized by a validated schema.Partition (for the
// critical-path structure of the THG) and an activity.Set (for the per-class
// I_old / C_late histories).
package alink

import (
	"fmt"

	"hdd/internal/activity"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// Links evaluates the activity-link functions for one partition.
type Links struct {
	part *schema.Partition
	act  *activity.Set
}

// New returns a Links evaluator over the given partition and activity set.
// The activity set must have one table per class of the partition.
func New(part *schema.Partition, act *activity.Set) *Links {
	if act.Len() != part.NumClasses() {
		panic(fmt.Sprintf("alink: %d activity tables for %d classes", act.Len(), part.NumClasses()))
	}
	return &Links{part: part, act: act}
}

// Partition returns the partition the links are evaluated over.
func (l *Links) Partition() *schema.Partition { return l.part }

// TickBarrier draws an instant from the clock under the activity set's
// begin barrier: every transaction with a smaller initiation tick is
// guaranteed registered, which is what makes evaluating I_old (and hence
// A/B/E) at the returned instant stable. Wall scheduling must use this
// rather than a bare clock tick.
func (l *Links) TickBarrier(clock *vclock.Clock) vclock.Time {
	return l.act.TickBarrier(clock)
}

// A evaluates the activity link function A_i^j(m) (§4.1): the composition
// of I_old along the critical path T_i → … → T_j. It requires T_j ⇑ T_i and
// panics otherwise — the function is undefined off the critical path, and
// callers (Protocol A) only reach it for declared upward reads, so an
// off-path call is a bug, not an input error.
func (l *Links) A(i, j schema.ClassID, m vclock.Time) vclock.Time {
	path := l.part.CriticalPath(i, j)
	if path == nil {
		panic(fmt.Sprintf("alink: A_%d^%d undefined: T%d is not higher than T%d", i, j, j, i))
	}
	// path = [i, k, ..., j]; A_i^j(m) = I_old_j(... I_old_k(I_old_? ...)).
	// The recursion A_i^j(m) = A_k^j(A_i^k(m)) with the base case
	// A_i^j(m) = I_old_j(m) for a critical arc unrolls to applying I_old of
	// each successive class along the path, excluding the starting class.
	v := m
	for _, cls := range path[1:] {
		v = l.act.Class(cls).IOld(v)
	}
	return v
}

// B evaluates the backward activity link function B_j^i(m) (§5.1): the
// composition of C_late downward along the critical path from T_i up to
// T_j, i.e. the conceptual inverse of A_i^j. It requires T_j ⇑ T_i. The
// result is only meaningful when every C_late along the way is computable;
// TryB reports computability instead of panicking.
func (l *Links) B(i, j schema.ClassID, m vclock.Time) vclock.Time {
	v, ok := l.TryB(i, j, m)
	if !ok {
		panic(fmt.Sprintf("alink: B_%d^%d(%d) not computable", j, i, m))
	}
	return v
}

// TryB evaluates B_j^i(m) if every C_late on the way is computable.
//
// With CP_i^j = T_i → … → T_k → T_j, the §5.1 recursion
//
//	B_j^i(m) = C_late_j(m)            if T_i → T_j is the whole path
//	B_j^i(m) = B_k^i(B_j^k(m))        otherwise
//
// unrolls to applying C_late of each class on the critical path except the
// bottom one (i), walking top-down. This pairs each C_late_k with the
// I_old_k applied by A on the way back up, which is exactly the structure
// the paper's proof of Property 2.1 exploits (per class k, the
// "previous application of C_k" argument gives I_old_k(C_late_k(y)) ≥ y).
func (l *Links) TryB(i, j schema.ClassID, m vclock.Time) (vclock.Time, bool) {
	path := l.part.CriticalPath(i, j)
	if path == nil {
		panic(fmt.Sprintf("alink: B_%d^%d undefined: T%d is not higher than T%d", j, i, j, i))
	}
	v := m
	for idx := len(path) - 1; idx >= 1; idx-- {
		var ok bool
		v, ok = l.act.Class(path[idx]).TryCLate(v)
		if !ok {
			return 0, false
		}
	}
	return v, true
}

// E evaluates the extended activity link function E_i^j(m) (§5.1) along the
// undirected critical path UCP_i^j, applying I_old for upward critical arcs
// and C_late for downward ones. It requires i and j to be weakly connected
// in the THG. TryE reports computability; E panics when a required C_late
// is not computable.
func (l *Links) E(i, j schema.ClassID, m vclock.Time) vclock.Time {
	v, ok := l.TryE(i, j, m)
	if !ok {
		panic(fmt.Sprintf("alink: E_%d^%d(%d) not computable", i, j, m))
	}
	return v
}

// TryE evaluates E_i^j(m), reporting false if a C_late step is not yet
// computable.
func (l *Links) TryE(i, j schema.ClassID, m vclock.Time) (vclock.Time, bool) {
	if i == j {
		return m, true
	}
	ucp := l.part.UCP(i, j)
	if ucp == nil {
		panic(fmt.Sprintf("alink: E_%d^%d undefined: classes not connected in THG", i, j))
	}
	// Per-step rule, derived from the direct-arc base cases of §5.1 so that
	// E degenerates to A on an all-upward UCP and to the B chain on an
	// all-downward one:
	//
	//	up-step   cur→next (critical arc cur→next): apply I_old_next
	//	down-step cur→next (critical arc next→cur): apply C_late_cur
	v := m
	for idx := 0; idx+1 < len(ucp); idx++ {
		cur, next := schema.ClassID(ucp[idx]), schema.ClassID(ucp[idx+1])
		switch {
		case l.part.HasCriticalArc(cur, next):
			v = l.act.Class(int(next)).IOld(v)
		case l.part.HasCriticalArc(next, cur):
			var ok bool
			v, ok = l.act.Class(int(cur)).TryCLate(v)
			if !ok {
				return 0, false
			}
		default:
			panic(fmt.Sprintf("alink: UCP step %d-%d is not a critical arc", cur, next))
		}
	}
	return v, true
}

// TopoFollows evaluates the relation t1 ⇒ t2 ("topologically follows",
// §4.3) for transactions with initiation times i1 in class c1 and i2 in
// class c2. The classes must lie on one critical path; TopoFollows panics
// otherwise, matching the paper ("⇒ is defined only between transactions
// that belong to classes that are on a critical path").
func (l *Links) TopoFollows(c1 schema.ClassID, i1 vclock.Time, c2 schema.ClassID, i2 vclock.Time) bool {
	switch {
	case c1 == c2:
		return i1 > i2
	case l.part.Higher(c2, c1):
		// t2's class is higher — case (3): I(t2) < A_{c1}^{c2}(I(t1)).
		return i2 < l.A(c1, c2, i1)
	case l.part.Higher(c1, c2):
		// t1's class is higher — case (2): I(t1) ≥ A_{c2}^{c1}(I(t2)).
		return i1 >= l.A(c2, c1, i2)
	default:
		panic(fmt.Sprintf("alink: ⇒ undefined between classes %d and %d (not on one critical path)", c1, c2))
	}
}

// TimeWall is a released time wall TW(m,s) (§5.1–5.2): for every class i,
// Component[i] = E_s^i(m). No transaction dependency crosses the wall from
// the "older" side to the "newer" side (Lemma 2.1), so reading the latest
// versions strictly below the wall yields a consistent database state
// (Theorem 2).
type TimeWall struct {
	// Start is the starting class s the wall was computed from.
	Start schema.ClassID
	// At is the starting instant m.
	At vclock.Time
	// Component[i] = E_s^i(m) for class/segment i.
	Component []vclock.Time
	// Released is the instant the wall was released to readers.
	Released vclock.Time
}

// Threshold returns the wall component for segment s: read-only
// transactions read the latest version with write timestamp strictly below
// Threshold(s).
func (w *TimeWall) Threshold(s schema.SegmentID) vclock.Time { return w.Component[s] }

// ComputeWall computes TW(m,s) eagerly, returning false if some C_late on
// the way is not yet computable, or if some class still has an active
// transaction initiated below its wall component.
//
// The second condition is an implementation-level strengthening of §5.2
// (which only demands C_late computability): releasing a wall while a
// transaction with initiation time below a component is still in flight
// would let a read-only transaction read *around* that transaction's
// pending versions — versions the wall admits — producing exactly the
// partial-visibility dependency cycle Theorem 2 rules out. Waiting until
// every admitted transaction has resolved keeps Protocol C reads
// non-blocking and trace-free while making "latest version below the wall"
// a stable set. (The paper defers implementation questions to §7.3.)
func (l *Links) ComputeWall(s schema.ClassID, m vclock.Time) (*TimeWall, bool) {
	n := l.part.NumClasses()
	w := &TimeWall{Start: s, At: m, Component: make([]vclock.Time, n)}
	for i := 0; i < n; i++ {
		v, ok := l.TryE(s, schema.ClassID(i), m)
		if !ok {
			return nil, false
		}
		w.Component[i] = v
	}
	for i := 0; i < n; i++ {
		if !l.act.Class(i).Computable(w.Component[i]) {
			return nil, false
		}
	}
	return w, true
}

// AFrom evaluates the activity-link threshold of a *fictitious* class
// sitting immediately below base (§5, Figure 8): the composition of I_old
// along [base, …, j] including base itself. Read-only transactions whose
// read set lies on one critical path use this as their Protocol A
// threshold, with base the lowest class of that path.
func (l *Links) AFrom(base, j schema.ClassID, m vclock.Time) vclock.Time {
	v := l.act.Class(int(base)).IOld(m)
	if base == j {
		return v
	}
	path := l.part.CriticalPath(base, j)
	if path == nil {
		panic(fmt.Sprintf("alink: AFrom_%d^%d undefined: T%d is not higher than T%d", base, j, j, base))
	}
	for _, cls := range path[1:] {
		v = l.act.Class(cls).IOld(v)
	}
	return v
}
