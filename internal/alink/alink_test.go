package alink

import (
	"fmt"
	"math/rand"
	"testing"

	"hdd/internal/activity"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// chainPartition builds a k-class chain: class i reads every segment above
// it, so the THG reduces to k-1 → … → 1 → 0.
func chainPartition(t testing.TB, k int) *schema.Partition {
	t.Helper()
	names := make([]string, k)
	classes := make([]schema.ClassSpec, k)
	for i := 0; i < k; i++ {
		names[i] = fmt.Sprintf("seg%d", i)
		var reads []schema.SegmentID
		for j := 0; j < i; j++ {
			reads = append(reads, schema.SegmentID(j))
		}
		classes[i] = schema.ClassSpec{Name: fmt.Sprintf("c%d", i), Writes: schema.SegmentID(i), Reads: reads}
	}
	p, err := schema.NewPartition(names, classes)
	if err != nil {
		t.Fatalf("chainPartition(%d): %v", k, err)
	}
	return p
}

// veePartition builds classes 1 and 2 both reading segment 0.
func veePartition(t testing.TB) *schema.Partition {
	t.Helper()
	p, err := schema.NewPartition(
		[]string{"top", "left", "right"},
		[]schema.ClassSpec{
			{Name: "c0", Writes: 0},
			{Name: "c1", Writes: 1, Reads: []schema.SegmentID{0}},
			{Name: "c2", Writes: 2, Reads: []schema.SegmentID{0}},
		})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// scriptedHistory drives a random begin/commit history over the classes
// and returns the links plus the final clock value. All transactions are
// resolved at the end so every C_late is computable.
func scriptedHistory(t testing.TB, part *schema.Partition, seed int64, steps int) (*Links, vclock.Time) {
	t.Helper()
	act := activity.NewSet(part.NumClasses())
	links := New(part, act)
	r := rand.New(rand.NewSource(seed))
	clock := vclock.NewClock()
	type live struct {
		class int
		init  vclock.Time
	}
	var actives []live
	for i := 0; i < steps; i++ {
		if len(actives) > 0 && r.Intn(100) < 45 {
			k := r.Intn(len(actives))
			a := actives[k]
			act.Class(a.class).Commit(a.init, clock.Tick())
			actives = append(actives[:k], actives[k+1:]...)
		} else {
			c := r.Intn(part.NumClasses())
			init := clock.Tick()
			act.Class(c).Begin(init)
			actives = append(actives, live{class: c, init: init})
		}
	}
	for _, a := range actives {
		act.Class(a.class).Commit(a.init, clock.Tick())
	}
	return links, clock.Now()
}

// TestFigure6Trace reproduces the paper's Figure 6 example: a critical
// path T_i → T_k → T_j with A_i^j(m) = I_old_j(I_old_k(m)).
func TestFigure6Trace(t *testing.T) {
	part := chainPartition(t, 3) // path 2 → 1 → 0
	act := activity.NewSet(3)
	links := New(part, act)

	// Script (times are explicit):
	//   class 1: t_k initiated at 10, commits at 50.
	//   class 0: t_j initiated at 5, commits at 60.
	act.Class(1).Begin(10)
	act.Class(0).Begin(5)
	act.Class(1).Commit(10, 50)
	act.Class(0).Commit(5, 60)

	// A_2^1(m=30): oldest class-1 txn active at 30 initiated at 10.
	if got := links.A(2, 1, 30); got != 10 {
		t.Fatalf("A_2^1(30) = %d, want 10", got)
	}
	// A_2^0(30) = I_old_0(I_old_1(30)) = I_old_0(10) = 5.
	if got := links.A(2, 0, 30); got != 5 {
		t.Fatalf("A_2^0(30) = %d, want 5", got)
	}
	// With nothing active at m, A degenerates to m.
	if got := links.A(2, 0, 70); got != 70 {
		t.Fatalf("A_2^0(70) = %d, want 70 (quiescent)", got)
	}
}

func TestAPanicsOffPath(t *testing.T) {
	part := veePartition(t)
	links := New(part, activity.NewSet(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for A between off-path classes")
		}
	}()
	links.A(1, 2, 10)
}

// TestProperty21And22 checks the paper's Property 2.1 (A(B(m)) ≥ m) and
// 2.2 (A(B(m)-ε) < m) on random histories over chains of varying depth.
func TestProperty21And22(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		part := chainPartition(t, k)
		for seed := int64(0); seed < 20; seed++ {
			links, now := scriptedHistory(t, part, seed, 120)
			low, high := schema.ClassID(k-1), schema.ClassID(0)
			for m := vclock.Time(1); m <= now; m += 3 {
				b, ok := links.TryB(low, high, m)
				if !ok {
					t.Fatalf("k=%d seed=%d: B not computable after quiescence", k, seed)
				}
				if got := links.A(low, high, b); got < m {
					t.Fatalf("k=%d seed=%d m=%d: A(B(m))=%d < m (B(m)=%d)", k, seed, m, got, b)
				}
				if got := links.A(low, high, b-1); got >= m {
					t.Fatalf("k=%d seed=%d m=%d: A(B(m)-1)=%d ≥ m (B(m)=%d)", k, seed, m, got, b)
				}
			}
		}
	}
}

// TestEDegeneratesToAandB: along an all-upward UCP, E equals A; along an
// all-downward one, E equals the B chain.
func TestEDegeneratesToAandB(t *testing.T) {
	part := chainPartition(t, 4)
	for seed := int64(0); seed < 10; seed++ {
		links, now := scriptedHistory(t, part, seed, 100)
		for m := vclock.Time(1); m <= now; m += 5 {
			if a, e := links.A(3, 0, m), links.E(3, 0, m); a != e {
				t.Fatalf("seed=%d m=%d: E up-path %d != A %d", seed, m, e, a)
			}
			b, ok := links.TryB(3, 0, m)
			if !ok {
				t.Fatal("B not computable after quiescence")
			}
			if e := links.E(0, 3, m); e != b {
				t.Fatalf("seed=%d m=%d: E down-path %d != B %d", seed, m, e, b)
			}
		}
	}
}

func TestEIdentity(t *testing.T) {
	part := veePartition(t)
	links := New(part, activity.NewSet(3))
	if got := links.E(1, 1, 42); got != 42 {
		t.Fatalf("E_1^1(42) = %d, want 42", got)
	}
}

// TestEMixedPath exercises E across the vee (down from class 1's wall to
// the top, then up to class 2) with a scripted history.
func TestEMixedPath(t *testing.T) {
	part := veePartition(t)
	act := activity.NewSet(3)
	links := New(part, act)
	// Class 1 (left leaf): txn at 10 commits 40.
	// Class 0 (top): txn at 20 commits 30.
	// Class 2 (right leaf): txn at 25 commits 35.
	act.Class(1).Begin(10)
	act.Class(0).Begin(20)
	act.Class(2).Begin(25)
	act.Class(0).Commit(20, 30)
	act.Class(2).Commit(25, 35)
	act.Class(1).Commit(10, 40)

	// E_1^2(m=15): UCP [1,0,2]. Step 1→0 is upward (arc 1→0):
	// I_old_0(15) = 15 (class-0 txn initiated at 20, not active at 15).
	// Step 0→2 is downward (arc 2→0): C_late_0(15) = 15 (none active).
	// Wait: the downward step applies C_late of the *current* node 0.
	// So E = C_late_0(I_old_0(15))? No: the per-step rule applies
	// I_old_0 for arriving at 0, then C_late_0 for leaving 0 downward:
	// I_old_0(15)=15, then C_late_0(15)=15.
	if got := links.E(1, 2, 15); got != 15 {
		t.Fatalf("E_1^2(15) = %d, want 15", got)
	}
	// E_1^2(m=25): I_old_0(25) = 20 (txn 20 active), then C_late_0(20) =
	// 20 (no class-0 txn initiated before 20 was active at 20).
	if got := links.E(1, 2, 25); got != 20 {
		t.Fatalf("E_1^2(25) = %d, want 20", got)
	}
	// E_1^2(m=35): I_old_0(35) = 35 (txn 20 committed at 30), then
	// C_late_0(35) = 35.
	if got := links.E(1, 2, 35); got != 35 {
		t.Fatalf("E_1^2(35) = %d, want 35", got)
	}
}

// deepPartition builds the smallest shape where E can genuinely be
// non-computable: a chain 2→1→0 plus a branch 3→0. The UCP from 3 to 2 is
// [3,0,1,2] with two consecutive downward steps, so C_late_1 is evaluated
// at a value that was not first filtered through I_old_1.
func deepPartition(t testing.TB) *schema.Partition {
	t.Helper()
	p, err := schema.NewPartition(
		[]string{"top", "mid", "leaf", "branch"},
		[]schema.ClassSpec{
			{Name: "c0", Writes: 0},
			{Name: "c1", Writes: 1, Reads: []schema.SegmentID{0}},
			{Name: "c2", Writes: 2, Reads: []schema.SegmentID{0, 1}},
			{Name: "c3", Writes: 3, Reads: []schema.SegmentID{0}},
		})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTryEVeeAlwaysComputable(t *testing.T) {
	// On a vee, the down-step's argument has already been filtered
	// through I_old of the same class, so C_late is computable even with
	// a top-class transaction active — an I_old step walls it off.
	part := veePartition(t)
	act := activity.NewSet(3)
	links := New(part, act)
	act.Class(0).Begin(10)
	v, ok := links.TryE(1, 2, 20)
	if !ok {
		t.Fatal("E_1^2(20) should be computable: I_old_0(20)=10 walls off the active txn")
	}
	if v != 10 {
		t.Fatalf("E_1^2(20) = %d, want 10", v)
	}
}

func TestTryENotComputable(t *testing.T) {
	part := deepPartition(t)
	act := activity.NewSet(4)
	links := New(part, act)
	// Class 1 has an active transaction initiated at 10.
	act.Class(1).Begin(10)
	// E_3^2(20): I_old_0(20)=20, C_late_0(20)=20, then C_late_1(20) — a
	// class-1 txn with init 10 < 20 is active → not computable.
	if _, ok := links.TryE(3, 2, 20); ok {
		t.Fatal("TryE should report not-computable with mid-class txn active")
	}
	act.Class(1).Commit(10, 30)
	v, ok := links.TryE(3, 2, 20)
	if !ok {
		t.Fatal("TryE should be computable after commit")
	}
	// C_late_1(20) = 30 (txn 10..30 was active at 20).
	if v != 30 {
		t.Fatalf("E_3^2(20) = %d, want 30", v)
	}
}

// TestTopoFollowsDefinition checks the three cases of ⇒ (§4.3).
func TestTopoFollowsDefinition(t *testing.T) {
	part := chainPartition(t, 2) // class 1 low, class 0 high
	act := activity.NewSet(2)
	links := New(part, act)
	// Class 0: txn A at 10..50. Class 1: txn B at 30..60.
	act.Class(0).Begin(10)
	act.Class(1).Begin(30)
	act.Class(0).Commit(10, 50)
	act.Class(1).Commit(30, 60)

	// Case 1, same class: later initiation follows earlier.
	if !links.TopoFollows(0, 10, 0, 5) {
		t.Fatal("case 1 failed: 10 should follow 5")
	}
	if links.TopoFollows(0, 5, 0, 10) {
		t.Fatal("case 1 anti-symmetry failed")
	}
	// Case 3: t1 in lower class 1 at init 30; t2 in higher class 0 at
	// init 10. A_1^0(I(t1)) = I_old_0(30) = 10; need I(t2) < 10 → false
	// for t2=10.
	if links.TopoFollows(1, 30, 0, 10) {
		t.Fatal("case 3: t1(30,low) should NOT follow t2(10,high): t2 was active at 30")
	}
	// But a higher-class txn initiated at 5 (before the threshold) is
	// followed.
	if !links.TopoFollows(1, 30, 0, 5) {
		t.Fatal("case 3: t1(30,low) should follow t2(5,high)")
	}
	// Case 2: t1 in higher class 0, t2 in lower class 1 at 30:
	// A_1^0(I(t2)) = I_old_0(30) = 10; t1 follows iff I(t1) ≥ 10.
	if !links.TopoFollows(0, 10, 1, 30) {
		t.Fatal("case 2: t1(10,high) should follow t2(30,low)")
	}
	if links.TopoFollows(0, 9, 1, 30) {
		t.Fatal("case 2: t1(9,high) should not follow t2(30,low)")
	}
}

func TestTopoFollowsPanicsOffPath(t *testing.T) {
	part := veePartition(t)
	links := New(part, activity.NewSet(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	links.TopoFollows(1, 10, 2, 20)
}

// TestTopoFollowsTransitivity is the paper's Property 1.2: ⇒ is
// critical-path transitive. Random histories, random triples on the chain.
func TestTopoFollowsTransitivity(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		part := chainPartition(t, k)
		for seed := int64(0); seed < 15; seed++ {
			act := activity.NewSet(k)
			links := New(part, act)
			r := rand.New(rand.NewSource(seed * 31))
			clock := vclock.NewClock()
			type txn struct {
				class int
				init  vclock.Time
			}
			var all []txn
			var actives []txn
			for i := 0; i < 80; i++ {
				if len(actives) > 0 && r.Intn(100) < 45 {
					idx := r.Intn(len(actives))
					a := actives[idx]
					act.Class(a.class).Commit(a.init, clock.Tick())
					actives = append(actives[:idx], actives[idx+1:]...)
				} else {
					c := r.Intn(k)
					init := clock.Tick()
					act.Class(c).Begin(init)
					tx := txn{class: c, init: init}
					actives = append(actives, tx)
					all = append(all, tx)
				}
			}
			for _, a := range actives {
				act.Class(a.class).Commit(a.init, clock.Tick())
			}
			// Exhaustive triples would be 80^3; sample instead.
			for trial := 0; trial < 4000; trial++ {
				t1 := all[r.Intn(len(all))]
				t2 := all[r.Intn(len(all))]
				t3 := all[r.Intn(len(all))]
				if t1.init == t2.init || t2.init == t3.init || t1.init == t3.init {
					continue
				}
				f12 := links.TopoFollows(schema.ClassID(t1.class), t1.init, schema.ClassID(t2.class), t2.init)
				f23 := links.TopoFollows(schema.ClassID(t2.class), t2.init, schema.ClassID(t3.class), t3.init)
				if f12 && f23 {
					if !links.TopoFollows(schema.ClassID(t1.class), t1.init, schema.ClassID(t3.class), t3.init) {
						t.Fatalf("k=%d seed=%d: transitivity violated: t1=%+v t2=%+v t3=%+v", k, seed, t1, t2, t3)
					}
				}
				// Anti-symmetry (Property 1.1).
				f21 := links.TopoFollows(schema.ClassID(t2.class), t2.init, schema.ClassID(t1.class), t1.init)
				if f12 && f21 {
					t.Fatalf("k=%d seed=%d: anti-symmetry violated: t1=%+v t2=%+v", k, seed, t1, t2)
				}
			}
		}
	}
}

func TestComputeWallQuiescent(t *testing.T) {
	part := veePartition(t)
	act := activity.NewSet(3)
	links := New(part, act)
	low := part.LowestClasses()
	w, ok := links.ComputeWall(low[0], 100)
	if !ok {
		t.Fatal("wall not computable on quiescent system")
	}
	for i, c := range w.Component {
		if c != 100 {
			t.Fatalf("component[%d] = %d, want 100 on quiescent system", i, c)
		}
	}
	if w.Threshold(schema.SegmentID(2)) != 100 {
		t.Fatal("Threshold accessor broken")
	}
}

func TestComputeWallBlockedByActive(t *testing.T) {
	part := deepPartition(t)
	act := activity.NewSet(4)
	links := New(part, act)
	act.Class(1).Begin(10)
	// Wall from the branch leaf (class 3) at m=20: the class-2 component
	// needs C_late_1(20), blocked by the active class-1 transaction.
	if _, ok := links.ComputeWall(3, 20); ok {
		t.Fatal("wall should not be computable with mid-class txn active")
	}
	act.Class(1).Commit(10, 30)
	w, ok := links.ComputeWall(3, 20)
	if !ok {
		t.Fatal("wall should be computable after commit")
	}
	if w.Component[2] != 30 {
		t.Fatalf("class-2 component = %d, want 30", w.Component[2])
	}
}

// TestWallAdmitsOnlyResolved: the strengthened release rule — every class's
// component only admits resolved transactions at release time.
func TestWallAdmitsOnlyResolved(t *testing.T) {
	part := veePartition(t)
	act := activity.NewSet(3)
	links := New(part, act)
	// Class 2 has an active txn at 40. Wall from class 1 at m=60:
	// component for class 2 is C_late_0(I_old_0(60)) = 60 ≥ 41 > 40,
	// admitting the unresolved class-2 txn → must not release.
	act.Class(2).Begin(40)
	if _, ok := links.ComputeWall(1, 60); ok {
		t.Fatal("wall admitting an unresolved transaction must not release")
	}
	act.Class(2).Commit(40, 65)
	if _, ok := links.ComputeWall(1, 60); !ok {
		t.Fatal("wall should release after the admitted txn resolves")
	}
}

func TestAFrom(t *testing.T) {
	part := chainPartition(t, 3)
	act := activity.NewSet(3)
	links := New(part, act)
	act.Class(2).Begin(10) // base class activity matters for AFrom
	act.Class(0).Begin(12)
	act.Class(2).Commit(10, 40)
	act.Class(0).Commit(12, 50)
	// AFrom(base=2, j=2, m=30) = I_old_2(30) = 10.
	if got := links.AFrom(2, 2, 30); got != 10 {
		t.Fatalf("AFrom(2,2,30) = %d, want 10", got)
	}
	// AFrom(base=2, j=0, 30) = I_old_0(I_old_1(I_old_2(30))) =
	// I_old_0(I_old_1(10)) = I_old_0(10) = 10 (class-0 txn initiated 12,
	// not active at 10).
	if got := links.AFrom(2, 0, 30); got != 10 {
		t.Fatalf("AFrom(2,0,30) = %d, want 10", got)
	}
}

func TestWallManagerLifecycle(t *testing.T) {
	part := veePartition(t)
	act := activity.NewSet(3)
	links := New(part, act)
	clock := vclock.NewClock()
	mgr := NewWallManager(links, clock, 10, 1)
	w0 := mgr.Current()
	if w0 == nil {
		t.Fatal("initial wall missing")
	}
	// Within the interval, Poll does not schedule a new wall.
	if mgr.Poll() {
		t.Fatal("Poll released a wall before the interval elapsed")
	}
	// Advance past the interval; next Poll schedules and (quiescent)
	// releases.
	for i := 0; i < 12; i++ {
		clock.Tick()
	}
	if !mgr.Poll() {
		t.Fatal("Poll should release after the interval")
	}
	w1 := mgr.Current()
	if w1 == w0 || w1.At <= w0.At {
		t.Fatalf("new wall not newer: %v then %v", w0.At, w1.At)
	}
	released, attempts := mgr.Stats()
	if released < 2 || attempts < released {
		t.Fatalf("stats: released=%d attempts=%d", released, attempts)
	}
}

func TestWallManagerBlocksOnActive(t *testing.T) {
	part := deepPartition(t)
	act := activity.NewSet(4)
	links := New(part, act)
	clock := vclock.NewClock()
	mgr := NewWallManager(links, clock, 5, 3)

	init := clock.Tick()
	act.Class(1).Begin(init)
	for i := 0; i < 10; i++ {
		clock.Tick()
	}
	if mgr.Poll() {
		t.Fatal("wall released despite active mid-class txn")
	}
	act.Class(1).Commit(init, clock.Tick())
	if !mgr.Poll() {
		t.Fatal("wall should release after commit")
	}
	if f := mgr.SafeFloor(); f > mgr.Current().At {
		// SafeFloor covers at least the current wall's smallest
		// component, which is ≤ its At.
		t.Fatalf("SafeFloor %d beyond wall At %d", f, mgr.Current().At)
	}
}

func TestWallManagerForce(t *testing.T) {
	part := veePartition(t)
	act := activity.NewSet(3)
	links := New(part, act)
	clock := vclock.NewClock()
	mgr := NewWallManager(links, clock, 1000, 1)
	before := mgr.Current().At
	w := mgr.Force()
	if w.At <= before {
		t.Fatalf("Force did not advance the wall: %d then %d", before, w.At)
	}
}
