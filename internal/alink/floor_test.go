package alink

import (
	"testing"

	"hdd/internal/activity"
	"hdd/internal/vclock"
)

func TestAcquireCurrentPinsFloor(t *testing.T) {
	part := veePartition(t)
	act := activity.NewSet(3)
	links := New(part, act)
	clock := vclock.NewClock()
	mgr := NewWallManager(links, clock, 4, 1)

	w1, release1 := mgr.AcquireCurrent()
	floor1 := wallFloor(w1)
	if mgr.SafeFloor() > floor1 {
		t.Fatalf("SafeFloor %d above acquired floor %d", mgr.SafeFloor(), floor1)
	}

	// Advance to a much newer wall.
	for i := 0; i < 50; i++ {
		init := act.BeginTxn(0, clock)
		act.FinishTxn(0, init, clock, false)
		mgr.Poll()
	}
	w2 := mgr.Current()
	if w2.At <= w1.At {
		t.Fatal("wall did not advance; test vacuous")
	}
	// The old wall's floor still pins SafeFloor.
	if mgr.SafeFloor() > floor1 {
		t.Fatalf("SafeFloor %d escaped pinned floor %d", mgr.SafeFloor(), floor1)
	}
	release1()
	if mgr.SafeFloor() <= floor1 {
		t.Fatalf("SafeFloor %d still at old floor after release", mgr.SafeFloor())
	}
	// Idempotent release: a second call must not underflow another
	// holder's pin of the same floor value.
	_, r2 := mgr.AcquireCurrent()
	release1()
	release1()
	cur := mgr.Current()
	if mgr.SafeFloor() > wallFloor(cur) {
		t.Fatal("double release corrupted the floor multiset")
	}
	r2()
}

func TestAcquireFloorMultiset(t *testing.T) {
	part := veePartition(t)
	act := activity.NewSet(3)
	links := New(part, act)
	clock := vclock.NewClock()
	mgr := NewWallManager(links, clock, 1000, 1)
	// Push the current wall's own floor well above the test floors.
	for i := 0; i < 100; i++ {
		clock.Tick()
	}
	mgr.Force()
	if wallFloor(mgr.Current()) <= 7 {
		t.Fatal("setup: current wall floor too low")
	}

	rA := mgr.AcquireFloor(7)
	rB := mgr.AcquireFloor(7)
	rC := mgr.AcquireFloor(3)
	if mgr.SafeFloor() != 3 {
		t.Fatalf("SafeFloor = %d, want 3", mgr.SafeFloor())
	}
	rC()
	if mgr.SafeFloor() != 7 {
		t.Fatalf("SafeFloor = %d, want 7", mgr.SafeFloor())
	}
	rA()
	if mgr.SafeFloor() != 7 {
		t.Fatalf("SafeFloor = %d, want 7 (second holder)", mgr.SafeFloor())
	}
	rB()
	if mgr.SafeFloor() == 7 {
		t.Fatal("floor 7 survived all releases")
	}
}
