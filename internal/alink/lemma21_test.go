package alink

import (
	"math/rand"
	"testing"

	"hdd/internal/activity"
	"hdd/internal/schema"
	"hdd/internal/vclock"
)

// TestLemma21NoCrossing property-tests the paper's Lemma 2.1 directly:
// construct random resolved histories, compute a wall TW(m,s), and verify
// that for every pair of transactions t1 (older side: I(t1) < E_s^i(m))
// and t2 (newer side: I(t2) ≥ E_s^j(m)) whose classes lie on one critical
// path, the dependency t1 → t2 is impossible under the PSR — i.e.
// ¬(t1 ⇒ t2). (PSR-enforcing schedules only admit dependencies along ⇒,
// so refuting ⇒ refutes the dependency.)
func TestLemma21NoCrossing(t *testing.T) {
	partitions := []func(testing.TB) *schema.Partition{
		func(tb testing.TB) *schema.Partition { return chainPartition(tb, 4) },
		func(tb testing.TB) *schema.Partition { return veePartition(tb) },
		func(tb testing.TB) *schema.Partition { return deepPartition(tb) },
	}
	for pi, mk := range partitions {
		part := mk(t)
		n := part.NumClasses()
		for seed := int64(0); seed < 12; seed++ {
			act := activity.NewSet(n)
			links := New(part, act)
			r := rand.New(rand.NewSource(seed*97 + int64(pi)))
			clock := vclock.NewClock()
			type txn struct {
				class int
				init  vclock.Time
			}
			var all, actives []txn
			for i := 0; i < 120; i++ {
				if len(actives) > 0 && r.Intn(100) < 45 {
					k := r.Intn(len(actives))
					act.Class(actives[k].class).Commit(actives[k].init, clock.Tick())
					actives = append(actives[:k], actives[k+1:]...)
				} else {
					c := r.Intn(n)
					init := act.BeginTxn(c, clock)
					tx := txn{c, init}
					actives = append(actives, tx)
					all = append(all, tx)
				}
			}
			for _, a := range actives {
				act.Class(a.class).Commit(a.init, clock.Tick())
			}

			// Try several walls anchored at several instants and starting
			// classes.
			for _, s := range part.LowestClasses() {
				for _, m := range []vclock.Time{clock.Now() / 4, clock.Now() / 2, clock.Now()} {
					if m == 0 {
						continue
					}
					w, ok := links.ComputeWall(s, m)
					if !ok {
						continue // not releasable at this instant; fine
					}
					for _, t1 := range all {
						if t1.init >= w.Component[t1.class] {
							continue // t1 not on the older side
						}
						for _, t2 := range all {
							if t2.init < w.Component[t2.class] {
								continue // t2 not on the newer side
							}
							if !part.Comparable(schema.ClassID(t1.class), schema.ClassID(t2.class)) {
								continue // ⇒ undefined off-path
							}
							if t1.init == t2.init {
								continue
							}
							if links.TopoFollows(schema.ClassID(t1.class), t1.init, schema.ClassID(t2.class), t2.init) {
								t.Fatalf("partition %d seed %d wall(s=%d,m=%d): crossing dependency possible: t1=(class %d, init %d) ⇒ t2=(class %d, init %d); components %v",
									pi, seed, s, m, t1.class, t1.init, t2.class, t2.init, w.Component)
							}
						}
					}
				}
			}
		}
	}
}
