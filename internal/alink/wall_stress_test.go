package alink

import (
	"math/rand"
	"sync"
	"testing"

	"hdd/internal/activity"
	"hdd/internal/vclock"
)

// TestWallManagerConcurrentStress hammers the manager from many goroutines
// while transactions churn: observers must only ever see fully built
// walls, and SafeFloor must never exceed the current wall's smallest
// component.
func TestWallManagerConcurrentStress(t *testing.T) {
	part := chainPartition(t, 4)
	act := activity.NewSet(4)
	links := New(part, act)
	clock := vclock.NewClock()
	mgr := NewWallManager(links, clock, 16, 3)

	var wg sync.WaitGroup
	// Churners: begin/commit transactions and poll, bounded.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 3000; i++ {
				class := r.Intn(4)
				init := act.BeginTxn(class, clock)
				act.Class(class).Commit(init, clock.Tick())
				mgr.Poll()
			}
		}(c)
	}
	// Observers: read walls and validate structure and SafeFloor.
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev vclock.Time
			for i := 0; i < 3000; i++ {
				w := mgr.Current()
				if w == nil || len(w.Component) != 4 {
					t.Error("incomplete wall observed")
					return
				}
				if w.At < prev {
					t.Errorf("wall At regressed: %d after %d", w.At, prev)
					return
				}
				prev = w.At
				// SafeFloor is always a positive instant while a wall
				// exists (it cannot go to Infinity with a current wall),
				// and never exceeds the *observed* wall's At by more
				// than a pending schedule can explain — sanity only;
				// exact compare races with concurrent releases.
				if f := mgr.SafeFloor(); f <= 0 {
					t.Errorf("SafeFloor = %d", f)
					return
				}
			}
		}()
	}
	wg.Wait()

	released, attempts := mgr.Stats()
	if released < 2 {
		t.Fatalf("released only %d walls under churn", released)
	}
	if attempts < released {
		t.Fatalf("attempts %d < released %d", attempts, released)
	}
}

// TestWallMonotoneAt: successive releases advance the wall instant.
func TestWallMonotoneAt(t *testing.T) {
	part := chainPartition(t, 3)
	act := activity.NewSet(3)
	links := New(part, act)
	clock := vclock.NewClock()
	mgr := NewWallManager(links, clock, 4, 2)
	prev := mgr.Current().At
	for i := 0; i < 50; i++ {
		init := act.BeginTxn(1, clock)
		act.Class(1).Commit(init, clock.Tick())
		for j := 0; j < 6; j++ {
			clock.Tick()
		}
		mgr.Poll()
		cur := mgr.Current().At
		if cur < prev {
			t.Fatalf("wall At went backwards: %d after %d", cur, prev)
		}
		prev = cur
	}
}
